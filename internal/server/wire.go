package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"synergy/internal/phoenix"
	"synergy/internal/schema"
)

// Commands of the MySQL client/server protocol this server implements.
const (
	comQuit        = 0x01
	comInitDB      = 0x02
	comQuery       = 0x03
	comFieldList   = 0x04
	comPing        = 0x0e
	comStmtPrepare = 0x16
	comStmtExecute = 0x17
	comStmtClose   = 0x19
)

// Column wire types (subset). phoenix results carry int64/float64/string,
// mapped to LONGLONG/DOUBLE/VAR_STRING; the execute decoder accepts the
// common client-sent types beyond those.
const (
	typeTiny       = 0x01
	typeShort      = 0x02
	typeLong       = 0x03
	typeFloat      = 0x04
	typeDouble     = 0x05
	typeNull       = 0x06
	typeLonglong   = 0x08
	typeInt24      = 0x09
	typeVarchar    = 0x0f
	typeNewDecimal = 0xf6
	typeBlob       = 0xfc
	typeVarString  = 0xfd
	typeString     = 0xfe
)

// Capability flags (subset).
const (
	capLongPassword  = 0x00000001
	capConnectWithDB = 0x00000008
	capProtocol41    = 0x00000200
	capTransactions  = 0x00002000
	capSecureConn    = 0x00008000
)

// Status flags.
const (
	statusInTrans    = 0x0001
	statusAutocommit = 0x0002
)

// Error codes (MySQL numbering where a faithful match exists).
const (
	errConCount     = 1040 // too many connections / admission queue full
	errParse        = 1064
	errUnknownCom   = 1047
	errUnknownVar   = 1193
	errWrongVarVal  = 1231
	errLockWait     = 1205
	errDeadlock     = 1213 // concurrency conflict (OCC/MVCC)
	errUnknownTable = 1146
	errUnknownCol   = 1054
	errTooManyStmts = 1461
	errUnknown      = 1105
)

const (
	charsetUTF8   = 33
	charsetBinary = 63
)

// wireTypeOf maps a phoenix column type to its wire type.
func wireTypeOf(t schema.ColType) byte {
	switch t {
	case schema.TInt:
		return typeLonglong
	case schema.TFloat:
		return typeDouble
	default:
		return typeVarString
	}
}

// formatValue renders a value for the text protocol; ok=false means NULL.
func formatValue(v schema.Value) (string, bool) {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10), true
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), true
	case string:
		return x, true
	default:
		return "", false
	}
}

// appendOK appends an OK packet payload.
func appendOK(b []byte, affected uint64, status uint16, info string) []byte {
	b = append(b, 0x00)
	b = appendLencInt(b, affected)
	b = appendLencInt(b, 0) // last insert id
	b = binary.LittleEndian.AppendUint16(b, status)
	b = binary.LittleEndian.AppendUint16(b, 0) // warnings
	return append(b, info...)
}

// appendErr appends an ERR packet payload.
func appendErr(b []byte, code uint16, sqlState, msg string) []byte {
	b = append(b, 0xff)
	b = binary.LittleEndian.AppendUint16(b, code)
	b = append(b, '#')
	if len(sqlState) != 5 {
		sqlState = "HY000"
	}
	b = append(b, sqlState...)
	return append(b, msg...)
}

// appendEOF appends an EOF packet payload.
func appendEOF(b []byte, status uint16) []byte {
	b = append(b, 0xfe)
	b = binary.LittleEndian.AppendUint16(b, 0) // warnings
	return binary.LittleEndian.AppendUint16(b, status)
}

// columnDef builds a protocol-4.1 column definition packet payload.
func columnDef(name string, wireType byte) []byte {
	b := make([]byte, 0, 64)
	b = appendLencString(b, "def")     // catalog
	b = appendLencString(b, "synergy") // schema
	b = appendLencString(b, "")        // table
	b = appendLencString(b, "")        // org table
	b = appendLencString(b, name)
	b = appendLencString(b, name) // org name
	b = appendLencInt(b, 0x0c)    // fixed-length fields
	charset := uint16(charsetUTF8)
	length := uint32(255 * 3)
	decimals := byte(0)
	switch wireType {
	case typeLonglong:
		charset, length = charsetBinary, 21
	case typeDouble:
		charset, length, decimals = charsetBinary, 22, 31
	}
	b = binary.LittleEndian.AppendUint16(b, charset)
	b = binary.LittleEndian.AppendUint32(b, length)
	b = append(b, wireType)
	b = binary.LittleEndian.AppendUint16(b, 0) // flags
	b = append(b, decimals)
	return append(b, 0x00, 0x00) // filler
}

// Row encoders append onto a caller-owned scratch buffer: the connection
// reuses one slice across rows and statements, so the steady-state row
// encode path performs no allocations. All paths — materialized result sets,
// streamed cursors (decoded and raw) — share these appenders, which is what
// keeps the streamed wire bytes identical to the materialized encoder by
// construction.

// appendTextValue appends one text-protocol value (lenc string or 0xfb NULL).
// Numbers are formatted with strconv.Append* into a stack buffer, matching
// formatValue byte for byte without its string allocation.
func appendTextValue(b []byte, v schema.Value) []byte {
	switch x := v.(type) {
	case int64:
		var tmp [20]byte
		s := strconv.AppendInt(tmp[:0], x, 10)
		b = appendLencInt(b, uint64(len(s)))
		return append(b, s...)
	case float64:
		var tmp [32]byte
		s := strconv.AppendFloat(tmp[:0], x, 'g', -1, 64)
		b = appendLencInt(b, uint64(len(s)))
		return append(b, s...)
	case string:
		return appendLencString(b, x)
	default:
		return append(b, 0xfb) // NULL
	}
}

// appendTextRow appends a text-protocol row packet payload.
func appendTextRow(b []byte, cols []string, row schema.Row) []byte {
	for _, col := range cols {
		b = appendTextValue(b, row[col])
	}
	return b
}

// appendBinaryValue appends one binary-protocol value by its column's wire
// type. A value that disagrees with the declared type falls back to the
// lenc text rendering instead of panicking on a bad assertion — reachable
// when a column stores mixed types and the declared (or first-inspected)
// type doesn't match a later row.
func appendBinaryValue(b []byte, wireType byte, v schema.Value) []byte {
	switch wireType {
	case typeLonglong:
		if x, ok := v.(int64); ok {
			return binary.LittleEndian.AppendUint64(b, uint64(x))
		}
	case typeDouble:
		if x, ok := v.(float64); ok {
			return binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		}
	}
	return appendTextValue(b, v)
}

// appendBinaryRow appends a binary-protocol row packet payload
// (prepared-statement result sets): 0x00 header, a null bitmap with bit
// offset 2, then each non-NULL value encoded by its column's wire type.
func appendBinaryRow(b []byte, cols []string, types []byte, row schema.Row) []byte {
	start := len(b)
	b = append(b, 0x00)
	for n := (len(cols) + 7 + 2) / 8; n > 0; n-- {
		b = append(b, 0x00)
	}
	for i, col := range cols {
		v := row[col]
		if v == nil {
			pos := i + 2
			b[start+1+pos/8] |= 1 << (pos % 8)
			continue
		}
		b = appendBinaryValue(b, types[i], v)
	}
	return b
}

// appendRawTextValue appends one text-protocol value straight from its
// stored cell encoding: strings are copied payload-to-wire with no
// intermediate string, numbers are formatted from the decoded bits. Output
// is byte-identical to appendTextValue over the decoded value.
func appendRawTextValue(b []byte, raw []byte) []byte {
	switch phoenix.RawCellKind(raw) {
	case phoenix.CellInt:
		var tmp [20]byte
		s := strconv.AppendInt(tmp[:0], phoenix.RawCellInt(raw), 10)
		b = appendLencInt(b, uint64(len(s)))
		return append(b, s...)
	case phoenix.CellFloat:
		var tmp [32]byte
		s := strconv.AppendFloat(tmp[:0], phoenix.RawCellFloat(raw), 'g', -1, 64)
		b = appendLencInt(b, uint64(len(s)))
		return append(b, s...)
	case phoenix.CellString:
		p := phoenix.RawCellBytes(raw)
		b = appendLencInt(b, uint64(len(p)))
		return append(b, p...)
	default:
		return append(b, 0xfb) // NULL
	}
}

// appendTextRowRaw appends a text-protocol row packet payload from a raw
// cursor's current row without decoding values.
func appendTextRowRaw(b []byte, cur phoenix.RawCursor, ncols int) []byte {
	for i := 0; i < ncols; i++ {
		b = appendRawTextValue(b, cur.RawValue(i))
	}
	return b
}

// appendBinaryRowRaw appends a binary-protocol row packet payload from a raw
// cursor's current row. Values whose stored kind matches the declared wire
// type encode straight from the cell bits; mismatches fall back to the lenc
// text rendering, mirroring appendBinaryValue.
func appendBinaryRowRaw(b []byte, types []byte, cur phoenix.RawCursor) []byte {
	start := len(b)
	b = append(b, 0x00)
	for n := (len(types) + 7 + 2) / 8; n > 0; n-- {
		b = append(b, 0x00)
	}
	for i := range types {
		raw := cur.RawValue(i)
		kind := phoenix.RawCellKind(raw)
		if kind == phoenix.CellNull {
			pos := i + 2
			b[start+1+pos/8] |= 1 << (pos % 8)
			continue
		}
		switch {
		case types[i] == typeLonglong && kind == phoenix.CellInt:
			b = binary.LittleEndian.AppendUint64(b, uint64(phoenix.RawCellInt(raw)))
		case types[i] == typeDouble && kind == phoenix.CellFloat:
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(phoenix.RawCellFloat(raw)))
		default:
			b = appendRawTextValue(b, raw)
		}
	}
	return b
}

// decodeBinaryValue decodes one execute-request parameter of the given wire
// type at b[off], returning a schema.Value (int64, float64 or string).
func decodeBinaryValue(b []byte, off int, wireType byte, unsigned bool) (schema.Value, int, error) {
	need := func(n int) error {
		if off+n > len(b) {
			return errShortPacket
		}
		return nil
	}
	switch wireType {
	case typeNull:
		return nil, off, nil
	case typeTiny:
		if err := need(1); err != nil {
			return nil, 0, err
		}
		if unsigned {
			return int64(b[off]), off + 1, nil
		}
		return int64(int8(b[off])), off + 1, nil
	case typeShort:
		if err := need(2); err != nil {
			return nil, 0, err
		}
		u := binary.LittleEndian.Uint16(b[off:])
		if unsigned {
			return int64(u), off + 2, nil
		}
		return int64(int16(u)), off + 2, nil
	case typeLong, typeInt24:
		if err := need(4); err != nil {
			return nil, 0, err
		}
		u := binary.LittleEndian.Uint32(b[off:])
		if unsigned {
			return int64(u), off + 4, nil
		}
		return int64(int32(u)), off + 4, nil
	case typeLonglong:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		u := binary.LittleEndian.Uint64(b[off:])
		if unsigned && u > math.MaxInt64 {
			// schema.Value carries integers as int64; refuse rather than
			// silently wrap to a negative parameter.
			return nil, 0, fmt.Errorf("server: unsigned BIGINT parameter %d out of range (max %d)", u, int64(math.MaxInt64))
		}
		return int64(u), off + 8, nil
	case typeFloat:
		if err := need(4); err != nil {
			return nil, 0, err
		}
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))), off + 4, nil
	case typeDouble:
		if err := need(8); err != nil {
			return nil, 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[off:])), off + 8, nil
	case typeVarchar, typeVarString, typeString, typeBlob, typeNewDecimal:
		s, next, err := readLencBytes(b, off)
		if err != nil {
			return nil, 0, err
		}
		return string(s), next, nil
	default:
		return nil, 0, fmt.Errorf("server: unsupported parameter wire type 0x%02x", wireType)
	}
}
