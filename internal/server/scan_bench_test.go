package server

import (
	"fmt"
	"sync/atomic"
	"testing"

	"synergy/internal/schema"
	"synergy/internal/synergy"
)

// The scan benchmarks measure the server's full-table read path through a
// real socket: one client scanning a table per iteration, streamed (cursor
// execution) versus materialized (buffer-then-encode), text and binary row
// protocols. allocs/op is the headline: the streamed path's per-row encode
// works out of the connection's reused scratch and the cursor's raw cell
// views, so its allocations should stay near-constant as the table grows,
// while the materialized path allocates per row.

var benchScanSeq atomic.Int64

func benchScanServer(b *testing.B, rows int) (addr string) {
	b.Helper()
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "KV",
		Columns: []schema.Column{
			{Name: "K", Type: schema.TInt},
			{Name: "VS", Type: schema.TString},
			{Name: "VI", Type: schema.TInt},
			{Name: "VF", Type: schema.TFloat},
		},
		PK: []string{"K"},
	})
	if err := s.Validate(); err != nil {
		b.Fatal(err)
	}
	sys, err := synergy.New(s, []string{"KV"}, nil, synergy.Config{Concurrency: synergy.Hierarchical})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]schema.Row, 0, rows)
	for i := 1; i <= rows; i++ {
		data = append(data, schema.Row{
			"K": int64(i), "VS": fmt.Sprintf("value-%08d", i),
			"VI": int64(i * 7), "VF": float64(i) / 3,
		})
	}
	if err := sys.LoadBase("KV", data); err != nil {
		b.Fatal(err)
	}
	if err := sys.BuildViews(); err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{Backends: []Backend{SystemBackend("synergy", sys)}})
	if err != nil {
		b.Fatal(err)
	}
	addr = fmt.Sprintf("bench-scan-%d", benchScanSeq.Add(1))
	l, err := ListenInproc(addr)
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	b.Cleanup(func() { srv.Close() })
	return addr
}

func benchScan(b *testing.B, rows int, streamed, binary bool) {
	addr := benchScanServer(b, rows)
	c, err := Dial("inproc", addr, "bench", "")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	mode := "0"
	if streamed {
		mode = "1"
	}
	if err := c.Exec("SET synergy_stream = " + mode); err != nil {
		b.Fatal(err)
	}
	scan := func() (int, error) {
		var rs *ClientRows
		var err error
		if binary {
			st, err := c.Prepare("SELECT * FROM KV")
			if err != nil {
				return 0, err
			}
			defer st.Close()
			rs, err = st.QueryStream()
			if err != nil {
				return 0, err
			}
		} else {
			rs, err = c.QueryStream("SELECT * FROM KV")
			if err != nil {
				return 0, err
			}
		}
		n := 0
		for rs.Next() {
			n++
		}
		return n, rs.Close()
	}
	if n, err := scan(); err != nil || n != rows {
		b.Fatalf("warmup scan: %d rows, err %v", n, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := scan()
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("scan returned %d rows, want %d", n, rows)
		}
	}
}

func BenchmarkServerScanStreamed(b *testing.B)     { benchScan(b, 2000, true, false) }
func BenchmarkServerScanMaterialized(b *testing.B) { benchScan(b, 2000, false, false) }
func BenchmarkServerScanStreamedBinary(b *testing.B) {
	benchScan(b, 2000, true, true)
}
