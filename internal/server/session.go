package server

import (
	"errors"
	"fmt"

	"synergy/internal/mvcc"
	"synergy/internal/occ"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

// ErrTxnOpen reports BEGIN while a transaction is already open.
var ErrTxnOpen = errors.New("server: transaction already open")

// Session is one connection's transaction context, unifying the engine's
// three transaction shapes — synergy.Tx (full deployments, any concurrency
// mode), mvcc.SessionTx and occ.SessionTx (engine-direct deployments) —
// behind one interface.
//
// Outside an explicit transaction the session runs in autocommit: each
// write executes as its own transaction through the deployment's normal
// single-statement path, each read against its own snapshot. Begin opens an
// interactive transaction; Commit/Rollback close it. A statement error
// inside an open transaction rolls the whole transaction back (the engine's
// transaction objects require abort-on-error), mirroring MySQL's deadlock
// handling: the error surfaces to the client and the session is back in
// autocommit.
type Session interface {
	// Query runs a SELECT — inside the open transaction when there is one
	// (reading the transaction's own buffered writes), else against a fresh
	// snapshot.
	Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error)
	// QueryStream is Query returning a streaming cursor: rows are pulled
	// off the region scanner as the caller iterates, so peak memory is one
	// scan chunk for streamable shapes. The caller must Close the cursor
	// and check its error — for autocommit snapshot reads under MVCC,
	// Close is what settles the wrapping transaction.
	QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error)
	// Exec runs a write statement — buffered into the open transaction when
	// there is one, else as its own autocommitted transaction.
	Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error
	// Begin opens an interactive transaction; ErrTxnOpen if one is open.
	Begin(ctx *sim.Ctx) error
	// Commit commits the open transaction (no-op without one).
	Commit(ctx *sim.Ctx) error
	// Rollback aborts the open transaction (no-op without one).
	Rollback(ctx *sim.Ctx) error
	// InTxn reports whether an interactive transaction is open.
	InTxn() bool
	// SetReads selects the session's freshness contract against
	// asynchronously maintained views.
	SetReads(mode synergy.ViewReadMode)
	// Close aborts any open transaction and releases the session's
	// resources; the connection teardown path calls it unconditionally.
	Close(ctx *sim.Ctx) error
}

// --------------------------------------------------------------------------
// SystemSession: the full synergy.System path.

// SystemSession drives a deployed synergy.System: queries run their
// view-based rewrite with the session's freshness contract, autocommit
// writes take the deployment's WAL-logged single-statement path, and
// interactive transactions run on synergy.Tx with a commit-time WAL record
// (hierarchical and OCC; MVCC deployments have no transaction layer and
// need no logging).
type SystemSession struct {
	sys   *synergy.System
	reads synergy.ViewReadMode
	tx    *synergy.Tx
	// stmts/params accumulate the open transaction's write statements for
	// the commit-time WAL record.
	stmts  []sqlparser.Statement
	params [][]schema.Value
}

// NewSystemSession opens a session on sys with its configured freshness
// default.
func NewSystemSession(sys *synergy.System) *SystemSession {
	return &SystemSession{sys: sys, reads: sys.DefaultReadMode()}
}

// SetReads selects the session's freshness contract.
func (s *SystemSession) SetReads(m synergy.ViewReadMode) { s.reads = m }

// InTxn reports whether an interactive transaction is open.
func (s *SystemSession) InTxn() bool { return s.tx != nil }

// Begin opens an interactive transaction.
func (s *SystemSession) Begin(ctx *sim.Ctx) error {
	if s.tx != nil {
		return ErrTxnOpen
	}
	s.tx = s.sys.BeginTx(ctx)
	return nil
}

// Query runs a SELECT inside the open transaction or against a fresh
// snapshot.
func (s *SystemSession) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	if s.tx != nil {
		return s.tx.QueryWithReads(ctx, sel, params, s.reads)
	}
	return s.sys.QueryWithReads(ctx, sel, params, s.reads)
}

// QueryStream runs a SELECT as a streaming cursor, inside the open
// transaction or against a fresh snapshot.
func (s *SystemSession) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	if s.tx != nil {
		return s.tx.QueryStreamWithReads(ctx, sel, params, s.reads)
	}
	return s.sys.QueryStreamWithReads(ctx, sel, params, s.reads)
}

// Exec runs a write statement. A statement error inside an open transaction
// aborts it (see Session).
func (s *SystemSession) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if s.tx == nil {
		return s.sys.Exec(ctx, stmt, params)
	}
	if err := s.tx.Exec(ctx, stmt, params); err != nil {
		tx := s.tx
		s.clear()
		if aerr := tx.Abort(ctx); aerr != nil {
			return fmt.Errorf("%w (transaction rolled back; abort: %v)", err, aerr)
		}
		return fmt.Errorf("%w (transaction rolled back)", err)
	}
	s.stmts = append(s.stmts, stmt)
	s.params = append(s.params, params)
	return nil
}

// Commit commits the open transaction and, on success, WAL-logs it through
// the transaction layer as one committed group (LogCommitted).
func (s *SystemSession) Commit(ctx *sim.Ctx) error {
	if s.tx == nil {
		return nil
	}
	tx, stmts, params := s.tx, s.stmts, s.params
	s.clear()
	if err := tx.Commit(ctx); err != nil {
		return err
	}
	if s.sys.Txn != nil && len(stmts) > 0 {
		return s.sys.Txn.LogCommitted(ctx, stmts, params)
	}
	return nil
}

// Rollback aborts the open transaction.
func (s *SystemSession) Rollback(ctx *sim.Ctx) error {
	if s.tx == nil {
		return nil
	}
	tx := s.tx
	s.clear()
	return tx.Abort(ctx)
}

// Close aborts any open transaction.
func (s *SystemSession) Close(ctx *sim.Ctx) error { return s.Rollback(ctx) }

func (s *SystemSession) clear() {
	s.tx, s.stmts, s.params = nil, nil, nil
}

// --------------------------------------------------------------------------
// MVCCSession: engine-direct Tephra-style sessions (views disabled).

// MVCCSession adapts mvcc.Session / mvcc.SessionTx — the engine-direct path
// the Baseline and MVCC-UA deployments use, with no view maintenance stack.
type MVCCSession struct {
	sess *mvcc.Session
	tx   *mvcc.SessionTx
}

// NewMVCCSession opens a session over an MVCC engine binding.
func NewMVCCSession(sess *mvcc.Session) *MVCCSession { return &MVCCSession{sess: sess} }

// SetReads is a no-op: engine-direct deployments have no async views.
func (s *MVCCSession) SetReads(synergy.ViewReadMode) {}

// InTxn reports whether an interactive transaction is open.
func (s *MVCCSession) InTxn() bool { return s.tx != nil }

// Begin opens an interactive snapshot transaction.
func (s *MVCCSession) Begin(ctx *sim.Ctx) error {
	if s.tx != nil {
		return ErrTxnOpen
	}
	s.tx = s.sess.BeginTxn(ctx)
	return nil
}

// Query runs a SELECT inside the open transaction or as its own snapshot
// transaction.
func (s *MVCCSession) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	if s.tx != nil {
		return s.tx.Query(ctx, sel, params)
	}
	return s.sess.Query(ctx, sel, params)
}

// QueryStream runs a SELECT as a streaming cursor, inside the open
// transaction or as its own snapshot transaction (settled by Close).
func (s *MVCCSession) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	if s.tx != nil {
		return s.tx.QueryStream(ctx, sel, params)
	}
	return s.sess.QueryStream(ctx, sel, params)
}

// Exec runs a write statement; an error inside an open transaction aborts
// it (see Session).
func (s *MVCCSession) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if s.tx == nil {
		return s.sess.Exec(ctx, stmt, params)
	}
	if err := s.tx.Exec(ctx, stmt, params); err != nil {
		tx := s.tx
		s.tx = nil
		tx.Abort(ctx)
		return fmt.Errorf("%w (transaction rolled back)", err)
	}
	return nil
}

// Commit commits the open transaction.
func (s *MVCCSession) Commit(ctx *sim.Ctx) error {
	if s.tx == nil {
		return nil
	}
	tx := s.tx
	s.tx = nil
	return tx.Commit(ctx)
}

// Rollback aborts the open transaction.
func (s *MVCCSession) Rollback(ctx *sim.Ctx) error {
	if s.tx == nil {
		return nil
	}
	tx := s.tx
	s.tx = nil
	tx.Abort(ctx)
	return nil
}

// Close aborts any open transaction.
func (s *MVCCSession) Close(ctx *sim.Ctx) error { return s.Rollback(ctx) }

// --------------------------------------------------------------------------
// OCCSession: engine-direct optimistic sessions (views disabled).

// OCCSession adapts occ.Session / occ.SessionTx: statements buffer against
// a begin-timestamp snapshot and Commit validates backward — a conflict
// surfaces as occ.ErrConflict (wire error 1213) with nothing applied.
type OCCSession struct {
	sess *occ.Session
	tx   *occ.SessionTx
}

// NewOCCSession opens a session over an OCC engine binding.
func NewOCCSession(sess *occ.Session) *OCCSession { return &OCCSession{sess: sess} }

// SetReads is a no-op: engine-direct deployments have no async views.
func (s *OCCSession) SetReads(synergy.ViewReadMode) {}

// InTxn reports whether an interactive transaction is open.
func (s *OCCSession) InTxn() bool { return s.tx != nil }

// Begin opens an interactive optimistic transaction.
func (s *OCCSession) Begin(ctx *sim.Ctx) error {
	if s.tx != nil {
		return ErrTxnOpen
	}
	s.tx = s.sess.BeginTxn(ctx)
	return nil
}

// Query runs a SELECT inside the open transaction (joining its read set) or
// against a fresh snapshot.
func (s *OCCSession) Query(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (*phoenix.ResultSet, error) {
	if s.tx != nil {
		return s.tx.Query(ctx, sel, params)
	}
	return s.sess.Query(ctx, sel, params)
}

// QueryStream runs a SELECT as a streaming cursor, inside the open
// transaction (its scan ranges joining the read set) or against a fresh
// snapshot.
func (s *OCCSession) QueryStream(ctx *sim.Ctx, sel *sqlparser.SelectStmt, params []schema.Value) (phoenix.RowCursor, error) {
	if s.tx != nil {
		return s.tx.QueryStream(ctx, sel, params)
	}
	return s.sess.QueryStream(ctx, sel, params)
}

// Exec runs a write statement; an error inside an open transaction aborts
// it (see Session).
func (s *OCCSession) Exec(ctx *sim.Ctx, stmt sqlparser.Statement, params []schema.Value) error {
	if s.tx == nil {
		return s.sess.Exec(ctx, stmt, params)
	}
	if err := s.tx.Exec(ctx, stmt, params); err != nil {
		tx := s.tx
		s.tx = nil
		tx.Abort(ctx)
		return fmt.Errorf("%w (transaction rolled back)", err)
	}
	return nil
}

// Commit validates and commits the open transaction.
func (s *OCCSession) Commit(ctx *sim.Ctx) error {
	if s.tx == nil {
		return nil
	}
	tx := s.tx
	s.tx = nil
	return tx.Commit(ctx)
}

// Rollback aborts the open transaction.
func (s *OCCSession) Rollback(ctx *sim.Ctx) error {
	if s.tx == nil {
		return nil
	}
	tx := s.tx
	s.tx = nil
	tx.Abort(ctx)
	return nil
}

// Close aborts any open transaction.
func (s *OCCSession) Close(ctx *sim.Ctx) error { return s.Rollback(ctx) }
