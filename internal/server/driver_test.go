package server

import (
	"database/sql"
	"fmt"
	"testing"
)

// TestDatabaseSQLDriver runs the BEGIN/INSERT/SELECT/COMMIT shape through
// the stdlib database/sql machinery in all three concurrency modes.
func TestDatabaseSQLDriver(t *testing.T) {
	env := startServer(t, Config{})
	for i, mode := range []string{"hier", "mvcc", "occ"} {
		t.Run(mode, func(t *testing.T) {
			db, err := sql.Open("synergy", fmt.Sprintf("app@inproc(%s)?mode=%s&reads=stale", env.addr, mode))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			// One conn per pool: the wire session is stateful.
			db.SetMaxOpenConns(1)
			if err := db.Ping(); err != nil {
				t.Fatal(err)
			}

			base := int64(2000 + 100*i)
			val := fmt.Sprintf("sql-%s", mode)
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Exec("INSERT INTO Leaf (LID, L_RID, LVal) VALUES (?, ?, ?)", base, int64(1), val); err != nil {
				t.Fatal(err)
			}
			// The transaction reads its own buffered write.
			var lid int64
			if err := tx.QueryRow("SELECT l.LID FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = ?", val).Scan(&lid); err != nil {
				t.Fatal(err)
			}
			if lid != base {
				t.Fatalf("in-txn read LID %d, want %d", lid, base)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// Committed state via a prepared query.
			st, err := db.Prepare(testSelect)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			rows, err := st.Query(val)
			if err != nil {
				t.Fatal(err)
			}
			defer rows.Close()
			n := 0
			for rows.Next() {
				var rid, lid, lrid int64
				var rval, lval string
				if err := rows.Scan(&rid, &rval, &lid, &lrid, &lval); err != nil {
					t.Fatal(err)
				}
				if lval != val || rid != 1 {
					t.Fatalf("row (%d,%s,%d,%d,%s)", rid, rval, lid, lrid, lval)
				}
				n++
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("got %d rows, want 1", n)
			}

			// Rollback through database/sql leaves nothing behind.
			tx, err = db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Exec("INSERT INTO Leaf (LID, L_RID, LVal) VALUES (?, ?, ?)", base+1, int64(2), "sql-doomed"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
			var count int
			rows2, err := st.Query("sql-doomed")
			if err != nil {
				t.Fatal(err)
			}
			for rows2.Next() {
				count++
			}
			rows2.Close()
			if count != 0 {
				t.Fatalf("rolled-back row visible via database/sql")
			}
		})
	}
}
