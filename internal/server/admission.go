package server

import (
	"errors"
	"sync/atomic"
)

// ErrServerBusy reports an admission-queue overflow: every execution slot is
// busy and the wait queue is at its bound. The wire layer surfaces it as
// MySQL error 1040.
var ErrServerBusy = errors.New("server: admission queue full")

// Gate is the statement admission controller: a fixed pool of execution
// slots plus a bounded wait queue. Overload queues callers — wall-clock
// backpressure only, no simulated time is charged for queueing — and past
// the queue bound admission fails fast instead of accumulating unbounded
// waiters. One slot is held for the duration of one statement execution,
// never across client think time, so a session blocked mid-transaction on
// its client holds locks but no slot.
type Gate struct {
	slots    chan struct{}
	maxQueue int64

	waiting  atomic.Int64 // current queued acquirers
	queued   atomic.Int64 // cumulative acquisitions that had to queue
	rejected atomic.Int64 // cumulative fast-fail rejections
}

// NewGate builds a gate with the given slot and queue bounds (defaults: 8
// slots, 16 queued).
func NewGate(slots, queue int) *Gate {
	if slots <= 0 {
		slots = 8
	}
	if queue <= 0 {
		queue = 16
	}
	g := &Gate{slots: make(chan struct{}, slots), maxQueue: int64(queue)}
	for i := 0; i < slots; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// Acquire takes an execution slot, blocking in the wait queue when every
// slot is busy. It reports whether the caller had to queue; when the queue
// is at its bound it fails immediately with ErrServerBusy.
func (g *Gate) Acquire() (bool, error) {
	select {
	case <-g.slots:
		return false, nil
	default:
	}
	for {
		w := g.waiting.Load()
		if w >= g.maxQueue {
			g.rejected.Add(1)
			return false, ErrServerBusy
		}
		if g.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	g.queued.Add(1)
	<-g.slots
	g.waiting.Add(-1)
	return true, nil
}

// TryAcquire takes a slot only if one is free — the bench uses it to occupy
// the pool deterministically.
func (g *Gate) TryAcquire() bool {
	select {
	case <-g.slots:
		return true
	default:
		return false
	}
}

// Release returns a slot to the pool, waking the longest-queued acquirer
// (channel order).
func (g *Gate) Release() { g.slots <- struct{}{} }

// Waiting reports the acquirers currently queued.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// GateStats are cumulative admission counters.
type GateStats struct {
	// Queued counts acquisitions that found every slot busy and waited.
	Queued int64
	// Rejected counts acquisitions refused because the queue was full.
	Rejected int64
}

// Stats returns the cumulative admission counters.
func (g *Gate) Stats() GateStats {
	return GateStats{Queued: g.queued.Load(), Rejected: g.rejected.Load()}
}
