package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"synergy/internal/mvcc"
	"synergy/internal/occ"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

// serverVersion is the version string the handshake advertises; the 5.7
// prefix keeps version-sniffing clients happy.
const serverVersion = "5.7.32-synergy"

// maxPreparedStmts bounds one session's prepared-statement registry.
const maxPreparedStmts = 1024

// Backend is one deployed engine a server routes sessions to, named by the
// value `SET synergy_mode` (and the handshake database field) selects it
// with. Each concurrency mode is its own deployment, so a multi-mode server
// carries one backend per mode.
type Backend struct {
	Name       string
	NewSession func() Session
}

// SystemBackend wraps a deployed synergy.System as a named backend.
func SystemBackend(name string, sys *synergy.System) Backend {
	return Backend{Name: name, NewSession: func() Session { return NewSystemSession(sys) }}
}

// Config parameterizes a Server.
type Config struct {
	// Backends are the engines sessions can select; the first is the
	// default unless Default names another.
	Backends []Backend
	// Default is the backend new sessions start on.
	Default string
	// MaxConns caps concurrent connections (default 64); past it the
	// listener answers the connect with error 1040 and hangs up.
	MaxConns int
	// Slots is the statement execution pool size (default 8).
	Slots int
	// Queue bounds the admission wait queue (default 16).
	Queue int
	// Costs calibrates the wire cost knobs (nil = defaults).
	Costs *sim.Costs
}

// Server accepts MySQL-protocol connections and drives one Session per
// connection through the admission gate.
type Server struct {
	gate     *Gate
	costs    *sim.Costs
	backends map[string]Backend
	def      string
	maxConns int

	mu        sync.Mutex
	conns     map[*conn]struct{}
	listeners []net.Listener
	closed    bool

	live          atomic.Int64
	nextConnID    atomic.Uint32
	acceptedConns atomic.Int64
	rejectedConns atomic.Int64
	wg            sync.WaitGroup
}

// New builds a server over the given backends.
func New(cfg Config) (*Server, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("server: no backends configured")
	}
	costs := cfg.Costs
	if costs == nil {
		costs = sim.DefaultCosts()
	}
	maxConns := cfg.MaxConns
	if maxConns <= 0 {
		maxConns = 64
	}
	s := &Server{
		gate:     NewGate(cfg.Slots, cfg.Queue),
		costs:    costs,
		backends: map[string]Backend{},
		maxConns: maxConns,
		conns:    map[*conn]struct{}{},
	}
	for _, b := range cfg.Backends {
		name := strings.ToLower(b.Name)
		if _, dup := s.backends[name]; dup {
			return nil, fmt.Errorf("server: duplicate backend %q", name)
		}
		s.backends[name] = b
	}
	s.def = strings.ToLower(cfg.Default)
	if s.def == "" {
		s.def = strings.ToLower(cfg.Backends[0].Name)
	}
	if _, ok := s.backends[s.def]; !ok {
		return nil, fmt.Errorf("server: default backend %q not configured", s.def)
	}
	return s, nil
}

// Gate exposes the admission controller (the bench occupies it to
// demonstrate queueing deterministically).
func (s *Server) Gate() *Gate { return s.gate }

// ServerStats are cumulative serving counters.
type ServerStats struct {
	// AcceptedConns and RejectedConns count connections admitted and turned
	// away at the connection cap.
	AcceptedConns, RejectedConns int64
	// LiveConns is the current connection count.
	LiveConns int64
	// Admission carries the statement gate's counters.
	Admission GateStats
}

// Stats returns the cumulative serving counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		AcceptedConns: s.acceptedConns.Load(),
		RejectedConns: s.rejectedConns.Load(),
		LiveConns:     s.live.Load(),
		Admission:     s.gate.Stats(),
	}
}

// Serve accepts connections on l until the listener or server closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// Close stops the listeners, force-closes every live connection (their
// sessions roll back) and waits for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.nc.Close()
	}
	s.wg.Wait()
	return nil
}

// conn is one client connection: wire state plus its Session.
type conn struct {
	srv  *Server
	nc   net.Conn
	pc   *packetConn
	id   uint32
	sctx *sim.Ctx

	sess        Session
	backendName string
	readsName   string
	autocommit  bool
	stream      bool // SELECTs stream through a cursor (SET synergy_stream)

	// enc is the row-encode scratch, reused across rows and statements.
	// pc's buffered writer copies every packet out, so the slice is free
	// for reuse the moment writePacket returns.
	enc []byte
	// stmtStart is the connection's elapsed simulated time when the current
	// statement began; @@synergy_sim_ttfr_micros reports time-to-first-row
	// relative to it.
	stmtStart sim.Micros

	stmts      map[uint32]*prepared
	nextStmtID uint32
	queueWaits int64
}

// prepared is one server-side prepared statement: the parsed SQL, its
// parameter count, and the parameter types cached from the last execute
// that sent them (clients may omit types on re-execution).
type prepared struct {
	sql       string
	stmt      sqlparser.Statement
	numParams int
	types     []byte
	unsigned  []bool
}

// errClientQuit signals a clean COM_QUIT teardown.
var errClientQuit = errors.New("server: client quit")

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{
		srv:        s,
		nc:         nc,
		pc:         newPacketConn(nc),
		id:         s.nextConnID.Add(1),
		sctx:       sim.NewCtx(),
		autocommit: true,
		stream:     true,
		readsName:  "default",
		stmts:      map[uint32]*prepared{},
	}
	defer nc.Close()

	// Connection cap: refuse before the handshake, like a real server that
	// is out of connection slots.
	if s.live.Add(1) > int64(s.maxConns) {
		s.live.Add(-1)
		s.rejectedConns.Add(1)
		c.pc.writePacket(appendErr(nil, errConCount, "08004", "too many connections"))
		c.pc.flush()
		return
	}
	s.acceptedConns.Add(1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.live.Add(-1)
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	defer func() {
		// A vanished client must not leave locks held or snapshots pinned:
		// teardown rolls back whatever transaction is open and frees every
		// prepared statement. The session only exists once the handshake
		// picked a backend; a client that drops out earlier has nothing to
		// roll back.
		if c.sess != nil {
			c.sess.Close(c.sctx)
		}
		c.stmts = nil
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.live.Add(-1)
	}()

	if err := c.handshake(); err != nil {
		return
	}
	for {
		c.pc.resetSeq()
		payload, err := c.pc.readPacket()
		if err != nil {
			return // disconnect (EOF or reset): deferred teardown rolls back
		}
		if len(payload) == 0 {
			continue
		}
		if err := c.dispatch(payload); err != nil {
			return
		}
	}
}

// handshake runs the connect exchange: server greeting, client response
// (user + optional database selecting the backend), OK.
func (c *conn) handshake() error {
	c.sctx.Charge(c.srv.costs.WireConnect)
	if err := c.pc.writePacket(handshakeV10(c.id)); err != nil {
		return err
	}
	if err := c.pc.flush(); err != nil {
		return err
	}
	resp, err := c.pc.readPacket()
	if err != nil {
		return err
	}
	_, db, err := parseHandshakeResponse(resp)
	if err != nil {
		c.writeErrPacket(errParse, "08S01", err.Error())
		return err
	}
	name := strings.ToLower(db)
	if name == "" || name == "synergy" {
		name = c.srv.def
	}
	b, ok := c.srv.backends[name]
	if !ok {
		err := fmt.Errorf("unknown database %q (backends: %s)", db, c.srv.backendNames())
		c.writeErrPacket(1049, "42000", err.Error())
		return err
	}
	c.sess = b.NewSession()
	c.backendName = name
	return c.writeOK(0, "")
}

func (s *Server) backendNames() string {
	names := make([]string, 0, len(s.backends))
	for n := range s.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// handshakeV10 builds the server greeting.
func handshakeV10(connID uint32) []byte {
	b := []byte{0x0a}
	b = append(b, serverVersion...)
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint32(b, connID)
	b = append(b, "synergy1"...) // auth-plugin-data part 1 (unused)
	b = append(b, 0)
	caps := uint32(capLongPassword | capConnectWithDB | capProtocol41 | capTransactions | capSecureConn)
	b = binary.LittleEndian.AppendUint16(b, uint16(caps))
	b = append(b, charsetUTF8)
	b = binary.LittleEndian.AppendUint16(b, statusAutocommit)
	b = binary.LittleEndian.AppendUint16(b, uint16(caps>>16))
	b = append(b, 21)                  // auth data length
	b = append(b, make([]byte, 10)...) // reserved
	b = append(b, "synergysrv12"...)   // auth-plugin-data part 2
	b = append(b, 0)
	return b
}

// parseHandshakeResponse extracts the username and database of a protocol-41
// client response; authentication data is accepted and ignored.
func parseHandshakeResponse(b []byte) (user, db string, err error) {
	if len(b) < 33 {
		return "", "", errShortPacket
	}
	caps := binary.LittleEndian.Uint32(b[0:4])
	if caps&capProtocol41 == 0 {
		return "", "", fmt.Errorf("server: client does not speak protocol 4.1")
	}
	off := 32
	user, off, err = readNulString(b, off)
	if err != nil {
		return "", "", err
	}
	switch {
	case caps&0x00200000 != 0: // PLUGIN_AUTH_LENENC_CLIENT_DATA
		_, off, err = readLencBytes(b, off)
		if err != nil {
			return "", "", err
		}
	case caps&capSecureConn != 0:
		if off >= len(b) {
			return user, "", nil
		}
		n := int(b[off])
		off++
		if off+n > len(b) {
			return "", "", errShortPacket
		}
		off += n
	default:
		_, off, err = readNulString(b, off)
		if err != nil {
			return "", "", err
		}
	}
	if caps&capConnectWithDB != 0 && off < len(b) {
		// Tolerate both NUL-terminated and end-of-packet database names.
		end := off
		for end < len(b) && b[end] != 0 {
			end++
		}
		db = string(b[off:end])
	}
	return user, db, nil
}

// --------------------------------------------------------------------------
// Command dispatch

func (c *conn) dispatch(payload []byte) error {
	switch payload[0] {
	case comQuit:
		return errClientQuit
	case comPing:
		c.charge()
		return c.writeOK(0, "")
	case comInitDB:
		return c.switchMode(strings.TrimSpace(string(payload[1:])))
	case comQuery:
		return c.handleQuery(string(payload[1:]))
	case comFieldList:
		// Deprecated command: answer with an empty field list.
		return c.writeFinal(appendEOF(nil, c.status()))
	case comStmtPrepare:
		return c.handlePrepare(string(payload[1:]))
	case comStmtExecute:
		return c.handleExecute(payload)
	case comStmtClose:
		c.handleStmtClose(payload)
		return nil // COM_STMT_CLOSE sends no response
	default:
		return c.writeErrPacket(errUnknownCom, "08S01", fmt.Sprintf("unknown command 0x%02x", payload[0]))
	}
}

// charge books the fixed per-command framing cost.
func (c *conn) charge() { c.sctx.Charge(c.srv.costs.WirePacket) }

func (c *conn) status() uint16 {
	var st uint16
	if c.autocommit {
		st |= statusAutocommit
	}
	if c.sess != nil && c.sess.InTxn() {
		st |= statusInTrans
	}
	return st
}

func (c *conn) writeFinal(payload []byte) error {
	if err := c.pc.writePacket(payload); err != nil {
		return err
	}
	return c.pc.flush()
}

func (c *conn) writeOK(affected uint64, info string) error {
	return c.writeFinal(appendOK(nil, affected, c.status(), info))
}

func (c *conn) writeErrPacket(code uint16, sqlState, msg string) error {
	return c.writeFinal(appendErr(nil, code, sqlState, msg))
}

// writeEngineErr maps an engine error onto the closest MySQL error code.
func (c *conn) writeEngineErr(err error) error {
	switch {
	case errors.Is(err, occ.ErrConflict) || errors.Is(err, mvcc.ErrConflict):
		return c.writeErrPacket(errDeadlock, "40001", err.Error())
	case errors.Is(err, phoenix.ErrUnknownTable):
		return c.writeErrPacket(errUnknownTable, "42S02", err.Error())
	case errors.Is(err, phoenix.ErrUnknownColumn):
		return c.writeErrPacket(errUnknownCol, "42S22", err.Error())
	case errors.Is(err, ErrServerBusy):
		return c.writeErrPacket(errConCount, "08004", err.Error())
	case strings.Contains(err.Error(), "too many attempts"):
		// The lock manager's contended-acquire give-up.
		return c.writeErrPacket(errLockWait, "HY000", err.Error())
	}
	return c.writeErrPacket(errUnknown, "HY000", err.Error())
}

// --------------------------------------------------------------------------
// COM_QUERY

func (c *conn) handleQuery(sql string) error {
	q := strings.TrimSpace(sql)
	q = strings.TrimSuffix(q, ";")
	q = strings.TrimSpace(q)
	upper := strings.ToUpper(q)
	switch {
	case upper == "BEGIN" || upper == "START TRANSACTION":
		c.charge()
		if err := c.sess.Begin(c.sctx); err != nil {
			return c.writeEngineErr(err)
		}
		return c.writeOK(0, "")
	case upper == "COMMIT":
		c.charge()
		if err := c.sess.Commit(c.sctx); err != nil {
			return c.writeEngineErr(err)
		}
		return c.writeOK(0, "")
	case upper == "ROLLBACK":
		c.charge()
		if err := c.sess.Rollback(c.sctx); err != nil {
			return c.writeEngineErr(err)
		}
		return c.writeOK(0, "")
	case strings.HasPrefix(upper, "SET "):
		return c.handleSet(q[4:])
	case strings.HasPrefix(upper, "SELECT @@"):
		return c.handleSysVar(q[len("SELECT @@"):])
	}
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		return c.writeErrPacket(errParse, "42000", err.Error())
	}
	if n := sqlparser.CountParams(stmt); n > 0 {
		return c.writeErrPacket(errParse, "42000", "statement has ? placeholders; prepare it (COM_STMT_PREPARE)")
	}
	return c.execStatement(stmt, nil, false)
}

// execStatement runs one SQL statement through the admission gate and the
// session, writing a result set (SELECT) or an OK packet.
func (c *conn) execStatement(stmt sqlparser.Statement, params []schema.Value, binaryRows bool) error {
	queued, err := c.srv.gate.Acquire()
	if err != nil {
		return c.writeErrPacket(errConCount, "08004", "admission queue full: server overloaded")
	}
	if queued {
		c.queueWaits++
	}
	defer c.srv.gate.Release()
	c.charge()
	c.stmtStart = c.sctx.Elapsed()
	c.sctx.ResetFirstRow()
	if !c.autocommit && !c.sess.InTxn() {
		// autocommit=0: the first statement implicitly opens a transaction.
		if err := c.sess.Begin(c.sctx); err != nil {
			return c.writeEngineErr(err)
		}
	}
	if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
		if c.stream {
			cur, err := c.sess.QueryStream(c.sctx, sel, params)
			if err != nil {
				return c.writeEngineErr(err)
			}
			return c.writeCursor(cur, binaryRows)
		}
		rs, err := c.sess.Query(c.sctx, sel, params)
		if err != nil {
			return c.writeEngineErr(err)
		}
		return c.writeResultSet(rs, binaryRows, true)
	}
	if err := c.sess.Exec(c.sctx, stmt, params); err != nil {
		return c.writeEngineErr(err)
	}
	return c.writeOK(0, "")
}

// writeResultSet encodes rs as a protocol-41 result set (text or binary
// rows), charging the per-byte transfer cost for the whole response when
// charged is set. Sysvar introspection passes charged=false so its replies
// stay cost-free by construction, not by rounding.
func (c *conn) writeResultSet(rs *phoenix.ResultSet, binaryRows, charged bool) error {
	types := make([]byte, len(rs.Columns))
	for i, t := range rs.ColumnTypes() {
		types[i] = wireTypeOf(t)
	}
	pkts := make([][]byte, 0, len(rs.Rows)+len(rs.Columns)+3)
	pkts = append(pkts, appendLencInt(nil, uint64(len(rs.Columns))))
	for i, col := range rs.Columns {
		pkts = append(pkts, columnDef(col, types[i]))
	}
	pkts = append(pkts, appendEOF(nil, c.status()))
	for i, row := range rs.Rows {
		if i == 0 && charged {
			// The materialized path's time-to-first-row is the whole
			// execution: nothing was encoded until the result set was
			// fully buffered. (Uncharged sysvar replies don't mark — they
			// would clobber the previous statement's measurement.)
			c.sctx.MarkFirstRow()
		}
		if binaryRows {
			pkts = append(pkts, appendBinaryRow(nil, rs.Columns, types, row))
		} else {
			pkts = append(pkts, appendTextRow(nil, rs.Columns, row))
		}
	}
	pkts = append(pkts, appendEOF(nil, c.status()))
	if charged {
		total := 0
		for _, p := range pkts {
			total += len(p) + 4
		}
		c.sctx.Charge(c.srv.costs.WirePerByte.Mul(total))
	}
	for _, p := range pkts {
		if err := c.pc.writePacket(p); err != nil {
			return err
		}
	}
	return c.pc.flush()
}

// writeCursor streams a cursor's rows to the client as a protocol-41 result
// set: one row packet at a time through the connection's bounded flush
// buffer, so server memory stays O(scan chunk) no matter how many rows the
// query returns. Row payloads encode into the connection's reused scratch
// slice; cursors that expose raw cell bytes skip value decoding entirely.
//
// Error handling is asymmetric by protocol necessity: a failure before any
// packet goes out becomes a normal ERR reply, but once the column header is
// on the wire a result set cannot morph into an ERR packet, so a mid-stream
// cursor or Close error (e.g. an MVCC autocommit commit conflict surfacing
// at settle time) returns the error and the connection closes — the client
// sees a truncated result set, never a silently wrong one. Documented in
// docs/PROTOCOL.md.
//
// The per-byte wire cost is charged once for the whole response on success,
// over the same byte total the materialized writeResultSet computes, keeping
// simulated time identical across the two paths.
func (c *conn) writeCursor(cur phoenix.RowCursor, binaryRows bool) error {
	defer cur.Close(c.sctx)
	cols := cur.Columns()
	types := make([]byte, len(cols))
	for i, t := range cur.Types() {
		types[i] = wireTypeOf(t)
	}
	total := 0
	writePkt := func(p []byte) error {
		total += len(p) + 4
		return c.pc.writePacket(p)
	}
	b := c.enc
	defer func() { c.enc = b }()

	b = appendLencInt(b[:0], uint64(len(cols)))
	if err := writePkt(b); err != nil {
		return err
	}
	for i, col := range cols {
		if err := writePkt(columnDef(col, types[i])); err != nil {
			return err
		}
	}
	b = appendEOF(b[:0], c.status())
	if err := writePkt(b); err != nil {
		return err
	}

	raw, rawOK := cur.(phoenix.RawCursor)
	first := true
	for cur.Next(c.sctx) {
		if first {
			c.sctx.MarkFirstRow()
			first = false
		}
		b = b[:0]
		switch {
		case rawOK && binaryRows:
			b = appendBinaryRowRaw(b, types, raw)
		case rawOK:
			b = appendTextRowRaw(b, raw, len(cols))
		case binaryRows:
			b = appendBinaryRow(b, cols, types, cur.Row())
		default:
			b = appendTextRow(b, cols, cur.Row())
		}
		if err := writePkt(b); err != nil {
			return err
		}
	}
	if err := cur.Err(); err != nil {
		return err
	}
	// Close settles transactional cursors (MVCC autocommit commits here);
	// its error also tears the connection down — see above.
	if err := cur.Close(c.sctx); err != nil {
		return err
	}
	b = appendEOF(b[:0], c.status())
	total += len(b) + 4
	c.sctx.Charge(c.srv.costs.WirePerByte.Mul(total))
	if err := c.pc.writePacket(b); err != nil {
		return err
	}
	return c.pc.flush()
}

// --------------------------------------------------------------------------
// SET and system variables

func (c *conn) handleSet(rest string) error {
	c.charge()
	name, val := rest, ""
	if i := strings.IndexByte(rest, '='); i >= 0 {
		name, val = rest[:i], rest[i+1:]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	val = strings.TrimSpace(val)
	val = strings.Trim(val, "'\"")
	switch name {
	case "autocommit":
		on := val == "1" || strings.EqualFold(val, "on")
		off := val == "0" || strings.EqualFold(val, "off")
		if !on && !off {
			return c.writeErrPacket(errWrongVarVal, "42000", fmt.Sprintf("bad autocommit value %q", val))
		}
		// Turning autocommit back on commits the open transaction (MySQL
		// semantics).
		if on && c.sess.InTxn() {
			if err := c.sess.Commit(c.sctx); err != nil {
				return c.writeEngineErr(err)
			}
		}
		c.autocommit = on
	case "synergy_mode":
		return c.switchMode(val)
	case "synergy_reads":
		switch strings.ToLower(val) {
		case "stale":
			c.sess.SetReads(synergy.ReadStale)
		case "watermark":
			c.sess.SetReads(synergy.ReadWatermark)
		default:
			return c.writeErrPacket(errWrongVarVal, "42000", fmt.Sprintf("bad synergy_reads value %q (stale|watermark)", val))
		}
		c.readsName = strings.ToLower(val)
	case "synergy_stream":
		on := val == "1" || strings.EqualFold(val, "on")
		off := val == "0" || strings.EqualFold(val, "off")
		if !on && !off {
			return c.writeErrPacket(errWrongVarVal, "42000", fmt.Sprintf("bad synergy_stream value %q", val))
		}
		c.stream = on
	default:
		// Unknown SETs are accepted silently (clients send sql_mode, NAMES,
		// time_zone and the like on connect).
	}
	return c.writeOK(0, "")
}

// switchMode rebinds the session to another backend. Prepared statements
// survive: they are parsed SQL plus a parameter count, engine-agnostic.
func (c *conn) switchMode(val string) error {
	name := strings.ToLower(strings.TrimSpace(val))
	if name == "" || name == "synergy" {
		name = c.srv.def
	}
	if name == c.backendName {
		return c.writeOK(0, "")
	}
	if c.sess.InTxn() {
		return c.writeErrPacket(errWrongVarVal, "25001", "cannot switch synergy_mode inside a transaction")
	}
	b, ok := c.srv.backends[name]
	if !ok {
		return c.writeErrPacket(errWrongVarVal, "42000", fmt.Sprintf("unknown synergy_mode %q (backends: %s)", val, c.srv.backendNames()))
	}
	c.sess.Close(c.sctx)
	c.sess = b.NewSession()
	c.backendName = name
	return c.writeOK(0, "")
}

// handleSysVar answers SELECT @@var introspection queries. They are free —
// no wire cost is charged — so the bench can read @@synergy_sim_micros
// between transactions without perturbing the measurement.
func (c *conn) handleSysVar(rest string) error {
	name := strings.ToLower(strings.TrimSpace(rest))
	var v schema.Value
	switch name {
	case "synergy_sim_micros":
		v = int64(c.sctx.Elapsed())
	case "synergy_mode":
		v = c.backendName
	case "synergy_reads":
		v = c.readsName
	case "synergy_prepared_stmts":
		v = int64(len(c.stmts))
	case "synergy_queue_waits":
		v = c.queueWaits
	case "synergy_stream":
		var n int64
		if c.stream {
			n = 1
		}
		v = n
	case "synergy_sim_ttfr_micros":
		// Time to first row of the last statement's result set, relative to
		// that statement's start (0 when the last result was empty or the
		// statement wasn't a SELECT).
		var n int64
		if ttfr, ok := c.sctx.TimeToFirstRow(); ok && ttfr >= c.stmtStart {
			n = int64(ttfr - c.stmtStart)
		}
		v = n
	case "autocommit":
		var n int64
		if c.autocommit {
			n = 1
		}
		v = n
	case "version":
		v = serverVersion
	case "max_allowed_packet":
		v = int64(maxPacketPayload)
	default:
		return c.writeErrPacket(errUnknownVar, "HY000", fmt.Sprintf("unknown system variable %q", name))
	}
	col := "@@" + name
	rs := &phoenix.ResultSet{Columns: []string{col}, Rows: []schema.Row{{col: v}}}
	return c.writeResultSet(rs, false, false)
}

// --------------------------------------------------------------------------
// Prepared statements

func (c *conn) handlePrepare(sql string) error {
	c.charge()
	stmt, err := sqlparser.Parse(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";")))
	if err != nil {
		return c.writeErrPacket(errParse, "42000", err.Error())
	}
	if len(c.stmts) >= maxPreparedStmts {
		return c.writeErrPacket(errTooManyStmts, "42000",
			fmt.Sprintf("can't create more than %d prepared statements (close some)", maxPreparedStmts))
	}
	c.nextStmtID++
	id := c.nextStmtID
	n := sqlparser.CountParams(stmt)
	c.stmts[id] = &prepared{sql: sql, stmt: stmt, numParams: n}

	// Prepare-OK: statement id, column count 0 (result shape is computed at
	// execute — a documented deviation), parameter count.
	b := []byte{0x00}
	b = binary.LittleEndian.AppendUint32(b, id)
	b = binary.LittleEndian.AppendUint16(b, 0) // columns
	b = binary.LittleEndian.AppendUint16(b, uint16(n))
	b = append(b, 0x00)                        // filler
	b = binary.LittleEndian.AppendUint16(b, 0) // warnings
	if err := c.pc.writePacket(b); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := c.pc.writePacket(columnDef("?", typeVarString)); err != nil {
			return err
		}
	}
	if n > 0 {
		if err := c.pc.writePacket(appendEOF(nil, c.status())); err != nil {
			return err
		}
	}
	return c.pc.flush()
}

func (c *conn) handleExecute(payload []byte) error {
	if len(payload) < 10 {
		return c.writeErrPacket(errParse, "HY000", "malformed COM_STMT_EXECUTE")
	}
	id := binary.LittleEndian.Uint32(payload[1:5])
	ps, ok := c.stmts[id]
	if !ok {
		return c.writeErrPacket(errUnknown, "HY000", fmt.Sprintf("unknown prepared statement %d", id))
	}
	off := 10 // command, id, flags byte, iteration count
	var params []schema.Value
	if ps.numParams > 0 {
		nb := (ps.numParams + 7) / 8
		if off+nb+1 > len(payload) {
			return c.writeErrPacket(errParse, "HY000", "malformed COM_STMT_EXECUTE")
		}
		nullBits := payload[off : off+nb]
		off += nb
		newBound := payload[off]
		off++
		if newBound == 1 {
			types := make([]byte, ps.numParams)
			unsigned := make([]bool, ps.numParams)
			for i := 0; i < ps.numParams; i++ {
				if off+2 > len(payload) {
					return c.writeErrPacket(errParse, "HY000", "malformed COM_STMT_EXECUTE")
				}
				types[i] = payload[off]
				unsigned[i] = payload[off+1]&0x80 != 0
				off += 2
			}
			ps.types, ps.unsigned = types, unsigned
		}
		if ps.types == nil {
			return c.writeErrPacket(errParse, "HY000", "COM_STMT_EXECUTE without parameter types")
		}
		params = make([]schema.Value, ps.numParams)
		for i := 0; i < ps.numParams; i++ {
			if nullBits[i/8]&(1<<(i%8)) != 0 {
				params[i] = nil
				continue
			}
			v, next, err := decodeBinaryValue(payload, off, ps.types[i], ps.unsigned[i])
			if err != nil {
				return c.writeErrPacket(errParse, "HY000", err.Error())
			}
			params[i], off = v, next
		}
	}
	return c.execStatement(ps.stmt, params, true)
}

func (c *conn) handleStmtClose(payload []byte) {
	if len(payload) < 5 {
		return
	}
	id := binary.LittleEndian.Uint32(payload[1:5])
	delete(c.stmts, id)
}
