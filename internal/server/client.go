package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"strconv"

	"synergy/internal/phoenix"
	"synergy/internal/schema"
)

// MySQLError is a decoded ERR packet.
type MySQLError struct {
	Code     uint16
	SQLState string
	Message  string
}

func (e *MySQLError) Error() string {
	return fmt.Sprintf("Error %d (%s): %s", e.Code, e.SQLState, e.Message)
}

// Client is a minimal MySQL-protocol client speaking this server's command
// subset. It exists so the bench, the examples and the parity tests exercise
// the real byte stream; the database/sql driver wraps it.
type Client struct {
	nc net.Conn
	pc *packetConn
}

// Dial connects and handshakes. Network "inproc" dials a named in-process
// listener; anything else goes through net.Dial. The db name selects the
// backend ("" for the server default).
func Dial(network, addr, user, db string) (*Client, error) {
	var nc net.Conn
	var err error
	if network == "inproc" {
		nc, err = DialInproc(addr)
	} else {
		nc, err = net.Dial(network, addr)
	}
	if err != nil {
		return nil, err
	}
	c, err := NewClient(nc, user, db)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClient handshakes over an established conn.
func NewClient(nc net.Conn, user, db string) (*Client, error) {
	c := &Client{nc: nc, pc: newPacketConn(nc)}
	greeting, err := c.pc.readPacket()
	if err != nil {
		return nil, err
	}
	if len(greeting) == 0 {
		return nil, errShortPacket
	}
	if greeting[0] == 0xff {
		return nil, parseErrPacket(greeting)
	}
	if greeting[0] != 0x0a {
		return nil, fmt.Errorf("server: unexpected handshake version 0x%02x", greeting[0])
	}
	if err := c.pc.writePacket(handshakeResponse(user, db)); err != nil {
		return nil, err
	}
	if err := c.pc.flush(); err != nil {
		return nil, err
	}
	ok, err := c.pc.readPacket()
	if err != nil {
		return nil, err
	}
	if len(ok) > 0 && ok[0] == 0xff {
		return nil, parseErrPacket(ok)
	}
	return c, nil
}

// handshakeResponse builds a protocol-41 client response.
func handshakeResponse(user, db string) []byte {
	caps := uint32(capLongPassword | capProtocol41 | capTransactions | capSecureConn)
	if db != "" {
		caps |= capConnectWithDB
	}
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, caps)
	b = binary.LittleEndian.AppendUint32(b, maxPacketPayload)
	b = append(b, charsetUTF8)
	b = append(b, make([]byte, 23)...)
	b = append(b, user...)
	b = append(b, 0)
	b = append(b, 0) // auth response length (no password)
	if db != "" {
		b = append(b, db...)
		b = append(b, 0)
	}
	return b
}

// Close sends COM_QUIT and closes the conn.
func (c *Client) Close() error {
	c.pc.resetSeq()
	c.pc.writePacket([]byte{comQuit})
	c.pc.flush()
	return c.nc.Close()
}

// Ping round-trips COM_PING.
func (c *Client) Ping() error {
	if err := c.command([]byte{comPing}); err != nil {
		return err
	}
	_, _, err := c.readResult(false)
	return err
}

func (c *Client) command(payload []byte) error {
	c.pc.resetSeq()
	if err := c.pc.writePacket(payload); err != nil {
		return err
	}
	return c.pc.flush()
}

// Exec runs a statement expected to return OK (writes, BEGIN/COMMIT/SET...).
// A result set response is drained and discarded.
func (c *Client) Exec(sql string) error {
	if err := c.command(append([]byte{comQuery}, sql...)); err != nil {
		return err
	}
	_, _, err := c.readResult(false)
	return err
}

// Query runs a SELECT over the text protocol, decoding the rows into typed
// values by column wire type.
func (c *Client) Query(sql string) (*phoenix.ResultSet, error) {
	if err := c.command(append([]byte{comQuery}, sql...)); err != nil {
		return nil, err
	}
	rs, _, err := c.readResult(false)
	if err != nil {
		return nil, err
	}
	if rs == nil {
		return nil, fmt.Errorf("server: statement returned no result set")
	}
	return rs, nil
}

// QueryStream runs a SELECT over the text protocol, returning the rows as an
// incremental reader: each Next consumes one row packet off the wire into a
// reused buffer, so client memory stays constant in the result size and the
// first row is available before the server finished its scan.
func (c *Client) QueryStream(sql string) (*ClientRows, error) {
	if err := c.command(append([]byte{comQuery}, sql...)); err != nil {
		return nil, err
	}
	rows, _, err := c.readResponse(false)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, fmt.Errorf("server: statement returned no result set")
	}
	return rows, nil
}

// SysVar reads one @@ system variable.
func (c *Client) SysVar(name string) (schema.Value, error) {
	rs, err := c.Query("SELECT @@" + name)
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) != 1 || len(rs.Columns) != 1 {
		return nil, fmt.Errorf("server: malformed sysvar result")
	}
	return rs.Rows[0][rs.Columns[0]], nil
}

// SimMicros reads the session's accumulated simulated cost (charge-free).
func (c *Client) SimMicros() (int64, error) {
	v, err := c.SysVar("synergy_sim_micros")
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("server: non-integer synergy_sim_micros %v", v)
	}
	return n, nil
}

// Begin/Commit/Rollback are conveniences over Exec.
func (c *Client) Begin() error    { return c.Exec("BEGIN") }
func (c *Client) Commit() error   { return c.Exec("COMMIT") }
func (c *Client) Rollback() error { return c.Exec("ROLLBACK") }

// --------------------------------------------------------------------------
// Prepared statements

// ClientStmt is a client-side handle on a server-prepared statement.
type ClientStmt struct {
	c         *Client
	id        uint32
	numParams int
	closed    bool
}

// Prepare sends COM_STMT_PREPARE.
func (c *Client) Prepare(sql string) (*ClientStmt, error) {
	if err := c.command(append([]byte{comStmtPrepare}, sql...)); err != nil {
		return nil, err
	}
	p, err := c.pc.readPacket()
	if err != nil {
		return nil, err
	}
	if len(p) > 0 && p[0] == 0xff {
		return nil, parseErrPacket(p)
	}
	if len(p) < 12 || p[0] != 0x00 {
		return nil, fmt.Errorf("server: malformed prepare response")
	}
	st := &ClientStmt{
		c:         c,
		id:        binary.LittleEndian.Uint32(p[1:5]),
		numParams: int(binary.LittleEndian.Uint16(p[7:9])),
	}
	numCols := int(binary.LittleEndian.Uint16(p[5:7]))
	// Drain parameter and column definition blocks (each EOF-terminated).
	for _, n := range []int{st.numParams, numCols} {
		if n == 0 {
			continue
		}
		for i := 0; i <= n; i++ { // n defs + EOF
			if _, err := c.pc.readPacket(); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// NumParams reports the statement's placeholder count.
func (s *ClientStmt) NumParams() int { return s.numParams }

func (s *ClientStmt) execute(args []schema.Value) error {
	if s.closed {
		return fmt.Errorf("server: statement closed")
	}
	if len(args) != s.numParams {
		return fmt.Errorf("server: statement wants %d args, got %d", s.numParams, len(args))
	}
	b := []byte{comStmtExecute}
	b = binary.LittleEndian.AppendUint32(b, s.id)
	b = append(b, 0x00)                        // flags
	b = binary.LittleEndian.AppendUint32(b, 1) // iteration count
	if s.numParams > 0 {
		bitmap := make([]byte, (s.numParams+7)/8)
		for i, a := range args {
			if a == nil {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		b = append(b, bitmap...)
		b = append(b, 1) // new params bound
		for _, a := range args {
			switch a.(type) {
			case nil:
				b = append(b, typeNull, 0)
			case int64:
				b = append(b, typeLonglong, 0)
			case float64:
				b = append(b, typeDouble, 0)
			case string:
				b = append(b, typeVarString, 0)
			default:
				return fmt.Errorf("server: unsupported arg type %T", a)
			}
		}
		for _, a := range args {
			switch x := a.(type) {
			case int64:
				b = binary.LittleEndian.AppendUint64(b, uint64(x))
			case float64:
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
			case string:
				b = appendLencString(b, x)
			}
		}
	}
	return s.c.command(b)
}

// Exec runs the prepared statement expecting an OK response.
func (s *ClientStmt) Exec(args ...schema.Value) error {
	if err := s.execute(args); err != nil {
		return err
	}
	_, _, err := s.c.readResult(true)
	return err
}

// Query runs the prepared statement expecting a binary result set.
func (s *ClientStmt) Query(args ...schema.Value) (*phoenix.ResultSet, error) {
	if err := s.execute(args); err != nil {
		return nil, err
	}
	rs, _, err := s.c.readResult(true)
	if err != nil {
		return nil, err
	}
	if rs == nil {
		return nil, fmt.Errorf("server: statement returned no result set")
	}
	return rs, nil
}

// QueryStream runs the prepared statement, reading the binary result set
// incrementally (see Client.QueryStream).
func (s *ClientStmt) QueryStream(args ...schema.Value) (*ClientRows, error) {
	if err := s.execute(args); err != nil {
		return nil, err
	}
	rows, _, err := s.c.readResponse(true)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, fmt.Errorf("server: statement returned no result set")
	}
	return rows, nil
}

// Close frees the server-side statement (COM_STMT_CLOSE, no response).
func (s *ClientStmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	b := []byte{comStmtClose}
	b = binary.LittleEndian.AppendUint32(b, s.id)
	return s.c.command(b)
}

// --------------------------------------------------------------------------
// Response decoding

func parseErrPacket(p []byte) error {
	if len(p) < 3 {
		return errShortPacket
	}
	e := &MySQLError{Code: binary.LittleEndian.Uint16(p[1:3]), SQLState: "HY000"}
	off := 3
	if off < len(p) && p[off] == '#' && off+6 <= len(p) {
		e.SQLState = string(p[off+1 : off+6])
		off += 6
	}
	e.Message = string(p[off:])
	return e
}

func isEOFPacket(p []byte) bool { return len(p) > 0 && len(p) < 9 && p[0] == 0xfe }

// readResult consumes one command response: (nil, affected, nil) for OK, a
// fully drained result set for a row response, an error for ERR. It is the
// materialized convenience over readResponse/ClientRows, the way the
// server's Query API drains its own cursor.
func (c *Client) readResult(binaryRows bool) (*phoenix.ResultSet, uint64, error) {
	rows, affected, err := c.readResponse(binaryRows)
	if err != nil || rows == nil {
		return nil, affected, err
	}
	rs := &phoenix.ResultSet{Columns: rows.names}
	for rows.Next() {
		row, err := rows.Row()
		if err != nil {
			return nil, 0, err
		}
		rs.Rows = append(rs.Rows, row)
	}
	if err := rows.Err(); err != nil {
		return nil, 0, err
	}
	return rs, 0, nil
}

// readResponse consumes a command response's leading packets: (nil,
// affected, nil) for OK, an error for ERR, and for a result-set header a
// ClientRows positioned before the first row (column definitions and their
// EOF consumed).
func (c *Client) readResponse(binaryRows bool) (*ClientRows, uint64, error) {
	p, err := c.pc.readPacket()
	if err != nil {
		return nil, 0, err
	}
	if len(p) == 0 {
		return nil, 0, errShortPacket
	}
	switch p[0] {
	case 0x00:
		affected, _, err := readLencInt(p, 1)
		if err != nil {
			return nil, 0, err
		}
		return nil, affected, nil
	case 0xff:
		return nil, 0, parseErrPacket(p)
	case 0xfe:
		return nil, 0, nil // EOF response (COM_FIELD_LIST)
	}
	ncols64, _, err := readLencInt(p, 0)
	if err != nil {
		return nil, 0, err
	}
	ncols := int(ncols64)
	names := make([]string, ncols)
	types := make([]byte, ncols)
	for i := 0; i < ncols; i++ {
		def, err := c.pc.readPacket()
		if err != nil {
			return nil, 0, err
		}
		names[i], types[i], err = parseColumnDef(def)
		if err != nil {
			return nil, 0, err
		}
	}
	if _, err := c.pc.readPacket(); err != nil { // EOF after defs
		return nil, 0, err
	}
	return &ClientRows{c: c, names: names, types: types, binary: binaryRows}, 0, nil
}

// ClientRows is an in-flight result set read row packet by row packet. The
// caller must Close it (or drain it with Next) before issuing the next
// command on the connection — the protocol has no way to abort a result set
// mid-stream short of closing the connection.
type ClientRows struct {
	c      *Client
	names  []string
	types  []byte
	binary bool
	buf    []byte // reused packet scratch; holds the current row packet
	vals   []schema.Value
	err    error
	done   bool
}

// Columns lists the result's column names in order.
func (r *ClientRows) Columns() []string { return r.names }

// Next reads the next row packet into the reused buffer. It returns false
// at end of set or on error (check Err). A discard loop that never calls
// Row or Values parses nothing and allocates nothing per row.
func (r *ClientRows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	p, err := r.c.pc.readPacketInto(r.buf)
	if err != nil {
		r.err, r.done = err, true
		return false
	}
	r.buf = p
	if isEOFPacket(p) {
		r.done = true
		return false
	}
	if len(p) > 0 && p[0] == 0xff {
		r.err, r.done = parseErrPacket(p), true
		return false
	}
	return true
}

// Values decodes the current row into a reused slice, in column order.
// Valid only until the next Next call.
func (r *ClientRows) Values() ([]schema.Value, error) {
	if r.vals == nil {
		r.vals = make([]schema.Value, len(r.names))
	}
	var err error
	if r.binary {
		err = decodeBinaryRowVals(r.buf, r.types, r.vals)
	} else {
		err = decodeTextRowVals(r.buf, r.types, r.vals)
	}
	if err != nil {
		return nil, err
	}
	return r.vals, nil
}

// Row decodes the current row into a fresh map.
func (r *ClientRows) Row() (schema.Row, error) {
	vals, err := r.Values()
	if err != nil {
		return nil, err
	}
	row := make(schema.Row, len(vals))
	for i, name := range r.names {
		row[name] = vals[i]
	}
	return row, nil
}

// RawBytes returns the current row packet's undecoded payload, valid until
// the next Next call. Benchmarks checksum the wire bytes with it, without
// decoding or allocating per row.
func (r *ClientRows) RawBytes() []byte { return r.buf }

// Err reports the error that terminated iteration, if any.
func (r *ClientRows) Err() error { return r.err }

// Close drains any unread row packets so the connection is command-aligned,
// and reports the terminal error, if any.
func (r *ClientRows) Close() error {
	for r.Next() {
	}
	return r.err
}

// parseColumnDef extracts the name and wire type of a column definition.
func parseColumnDef(p []byte) (string, byte, error) {
	off := 0
	var err error
	for i := 0; i < 4; i++ { // catalog, schema, table, org table
		if _, off, err = readLencBytes(p, off); err != nil {
			return "", 0, err
		}
	}
	nameB, off, err := readLencBytes(p, off)
	if err != nil {
		return "", 0, err
	}
	if _, off, err = readLencBytes(p, off); err != nil { // org name
		return "", 0, err
	}
	if _, off, err = readLencInt(p, off); err != nil { // fixed-length marker
		return "", 0, err
	}
	off += 2 + 4 // charset, column length
	if off >= len(p) {
		return "", 0, errShortPacket
	}
	return string(nameB), p[off], nil
}

// textValue decodes one text-protocol cell by its column wire type.
func textValue(s []byte, wireType byte) (schema.Value, error) {
	switch wireType {
	case typeTiny, typeShort, typeLong, typeInt24, typeLonglong:
		return strconv.ParseInt(string(s), 10, 64)
	case typeFloat, typeDouble, typeNewDecimal:
		return strconv.ParseFloat(string(s), 64)
	default:
		return string(s), nil
	}
}

// decodeTextRowVals decodes a text-protocol row packet into vals, in column
// order.
func decodeTextRowVals(p []byte, types []byte, vals []schema.Value) error {
	off := 0
	for i := range vals {
		if off < len(p) && p[off] == 0xfb {
			vals[i] = nil
			off++
			continue
		}
		cell, next, err := readLencBytes(p, off)
		if err != nil {
			return err
		}
		v, err := textValue(cell, types[i])
		if err != nil {
			return err
		}
		vals[i], off = v, next
	}
	return nil
}

// decodeBinaryRowVals decodes a binary-protocol row packet into vals, in
// column order.
func decodeBinaryRowVals(p []byte, types []byte, vals []schema.Value) error {
	if len(p) == 0 || p[0] != 0x00 {
		return fmt.Errorf("server: malformed binary row")
	}
	nb := (len(vals) + 7 + 2) / 8
	if 1+nb > len(p) {
		return errShortPacket
	}
	bitmap := p[1 : 1+nb]
	off := 1 + nb
	for i := range vals {
		pos := i + 2
		if bitmap[pos/8]&(1<<(pos%8)) != 0 {
			vals[i] = nil
			continue
		}
		v, next, err := decodeBinaryValue(p, off, types[i], false)
		if err != nil {
			return err
		}
		vals[i], off = v, next
	}
	return nil
}
