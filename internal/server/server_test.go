package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"synergy/internal/mvcc"
	"synergy/internal/occ"
	"synergy/internal/phoenix"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

// testSchema is the Root/Leaf shape with a materialized join view (the same
// fanout the contention bench uses).
func testSchema() (*schema.Schema, []string) {
	s := schema.New()
	s.AddRelation(&schema.Relation{
		Name: "Root",
		Columns: []schema.Column{
			{Name: "RID", Type: schema.TInt},
			{Name: "RVal", Type: schema.TString},
		},
		PK: []string{"RID"},
	})
	s.AddRelation(&schema.Relation{
		Name: "Leaf",
		Columns: []schema.Column{
			{Name: "LID", Type: schema.TInt},
			{Name: "L_RID", Type: schema.TInt},
			{Name: "LVal", Type: schema.TString},
		},
		PK:  []string{"LID"},
		FKs: []schema.ForeignKey{{Cols: []string{"L_RID"}, RefTable: "Root"}},
	})
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s, []string{
		"SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = ?",
		"INSERT INTO Leaf (LID, L_RID, LVal) VALUES (?, ?, ?)",
		"UPDATE Root SET RVal = ? WHERE RID = ?",
	}
}

const testSelect = "SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = ?"

func deploySystem(t *testing.T, mode synergy.ConcurrencyMode) *synergy.System {
	t.Helper()
	s, workload := testSchema()
	cfg := synergy.Config{Concurrency: mode}
	if mode != synergy.Hierarchical {
		cfg.MaxVersions = 16
	}
	sys, err := synergy.New(s, []string{"Root"}, workload, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var roots, leaves []schema.Row
	for i := int64(1); i <= 4; i++ {
		roots = append(roots, schema.Row{"RID": i, "RVal": fmt.Sprintf("r%d", i)})
		leaves = append(leaves, schema.Row{"LID": i, "L_RID": i, "LVal": fmt.Sprintf("l%d", i)})
	}
	if err := sys.LoadBase("Root", roots); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadBase("Leaf", leaves); err != nil {
		t.Fatal(err)
	}
	if err := sys.BuildViews(); err != nil {
		t.Fatal(err)
	}
	return sys
}

type testEnv struct {
	srv     *Server
	addr    string
	systems map[string]*synergy.System
}

// startServer deploys one system per concurrency mode and serves them as
// backends hier/mvcc/occ (plus engine-direct mvccdirect/occdirect adapters)
// over an in-process listener.
func startServer(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	env := &testEnv{addr: t.Name(), systems: map[string]*synergy.System{}}
	for name, mode := range map[string]synergy.ConcurrencyMode{
		"hier": synergy.Hierarchical, "mvcc": synergy.MVCC, "occ": synergy.OCC,
	} {
		env.systems[name] = deploySystem(t, mode)
	}
	mv, oc := env.systems["mvcc"], env.systems["occ"]
	cfg.Backends = []Backend{
		SystemBackend("hier", env.systems["hier"]),
		SystemBackend("mvcc", mv),
		SystemBackend("occ", oc),
		{Name: "mvccdirect", NewSession: func() Session {
			return NewMVCCSession(mvcc.NewSession(mv.Engine, mv.MVCCServer))
		}},
		{Name: "occdirect", NewSession: func() Session {
			return NewOCCSession(occ.NewSession(oc.Engine, oc.OCC))
		}},
	}
	cfg.Default = "hier"
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ListenInproc(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	env.srv = srv
	return env
}

func (e *testEnv) dial(t *testing.T, db string) *Client {
	t.Helper()
	c, err := Dial("inproc", e.addr, "test", db)
	if err != nil {
		t.Fatalf("dial %s: %v", db, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func sortRows(rows []schema.Row) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWireParity drives BEGIN/INSERT/SELECT/COMMIT through the wire in every
// concurrency mode and checks the rows the wire returns are identical to the
// in-process API's (the acceptance parity criterion).
func TestWireParity(t *testing.T) {
	env := startServer(t, Config{})
	for i, mode := range []string{"hier", "mvcc", "occ"} {
		t.Run(mode, func(t *testing.T) {
			c := env.dial(t, mode)
			base := int64(100 + 10*i)
			val := fmt.Sprintf("wire-%s-a", mode)

			// Autocommit write over the text protocol (literals).
			if err := c.Exec(fmt.Sprintf(
				"INSERT INTO Leaf (LID, L_RID, LVal) VALUES (%d, 1, '%s')", base, val)); err != nil {
				t.Fatalf("autocommit insert: %v", err)
			}

			// Multi-statement transaction with a prepared read that must see
			// the transaction's own buffered write.
			if err := c.Begin(); err != nil {
				t.Fatal(err)
			}
			txVal := fmt.Sprintf("wire-%s-b", mode)
			if err := c.Exec(fmt.Sprintf(
				"INSERT INTO Leaf (LID, L_RID, LVal) VALUES (%d, 2, '%s')", base+1, txVal)); err != nil {
				t.Fatalf("in-txn insert: %v", err)
			}
			st, err := c.Prepare(testSelect)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			rs, err := st.Query(txVal)
			if err != nil {
				t.Fatalf("in-txn select: %v", err)
			}
			if len(rs.Rows) != 1 {
				t.Fatalf("in-txn select saw %d rows, want 1 (own write)", len(rs.Rows))
			}
			if err := c.Commit(); err != nil {
				t.Fatal(err)
			}

			// Parity: the committed rows over the wire (binary protocol)
			// must equal the in-process API's result exactly.
			sel := sqlparser.MustParse(testSelect).(*sqlparser.SelectStmt)
			for _, v := range []string{val, txVal} {
				wire, err := st.Query(v)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := env.systems[mode].Query(sim.NewCtx(), sel, []schema.Value{v})
				if err != nil {
					t.Fatal(err)
				}
				sortRows(wire.Rows)
				sortRows(direct.Rows)
				if !reflect.DeepEqual(wire.Columns, direct.Columns) {
					t.Fatalf("columns diverge: wire %v direct %v", wire.Columns, direct.Columns)
				}
				if !reflect.DeepEqual(wire.Rows, direct.Rows) {
					t.Fatalf("rows diverge for %q:\nwire   %v\ndirect %v", v, wire.Rows, direct.Rows)
				}
			}
		})
	}
}

// TestEngineDirectBackends exercises the mvcc.SessionTx / occ.SessionTx
// adapters end to end.
func TestEngineDirectBackends(t *testing.T) {
	env := startServer(t, Config{})
	for _, mode := range []string{"mvccdirect", "occdirect"} {
		t.Run(mode, func(t *testing.T) {
			c := env.dial(t, mode)
			if err := c.Begin(); err != nil {
				t.Fatal(err)
			}
			if err := c.Exec("UPDATE Root SET RVal = 'direct' WHERE RID = 3"); err != nil {
				t.Fatal(err)
			}
			if err := c.Commit(); err != nil {
				t.Fatal(err)
			}
			rs, err := c.Query("SELECT RVal FROM Root WHERE RID = 3")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) != 1 || rs.Rows[0]["RVal"] != "direct" {
				t.Fatalf("unexpected rows %v", rs.Rows)
			}
		})
	}
}

// TestRollbackDiscards checks explicit ROLLBACK leaves no trace.
func TestRollbackDiscards(t *testing.T) {
	env := startServer(t, Config{})
	for _, mode := range []string{"hier", "mvcc", "occ"} {
		c := env.dial(t, mode)
		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := c.Exec("INSERT INTO Leaf (LID, L_RID, LVal) VALUES (500, 1, 'doomed')"); err != nil {
			t.Fatal(err)
		}
		if err := c.Rollback(); err != nil {
			t.Fatal(err)
		}
		st, err := c.Prepare(testSelect)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := st.Query("doomed")
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 0 {
			t.Fatalf("%s: rolled-back insert visible: %v", mode, rs.Rows)
		}
		st.Close()
	}
}

// TestStatementErrorAbortsTxn checks the MySQL-deadlock-style contract: a
// statement error inside an open transaction rolls the whole transaction
// back and the error says so.
func TestStatementErrorAbortsTxn(t *testing.T) {
	env := startServer(t, Config{})
	c := env.dial(t, "hier")
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("INSERT INTO Leaf (LID, L_RID, LVal) VALUES (600, 1, 'pre-error')"); err != nil {
		t.Fatal(err)
	}
	err := c.Exec("INSERT INTO Nonexistent (X) VALUES (1)")
	var me *MySQLError
	if !errors.As(err, &me) || me.Code != errUnknownTable {
		t.Fatalf("want error %d, got %v", errUnknownTable, err)
	}
	// COMMIT after the implicit rollback is a no-op OK, and the pre-error
	// write is gone.
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare(testSelect)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := st.Query("pre-error")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("aborted transaction's write visible: %v", rs.Rows)
	}
}

// TestMidTxnDisconnect kills connections mid-transaction and checks the
// teardown path rolls back: hierarchical locks release (a second session can
// write the same row), and MVCC/OCC snapshots unpin (ActiveTxns drains).
func TestMidTxnDisconnect(t *testing.T) {
	env := startServer(t, Config{})

	t.Run("hier-lock-release", func(t *testing.T) {
		a := env.dial(t, "hier")
		if err := a.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := a.Exec("UPDATE Root SET RVal = 'dirty' WHERE RID = 1"); err != nil {
			t.Fatal(err)
		}
		live := env.srv.Stats().LiveConns
		a.nc.Close() // vanish without COM_QUIT
		waitFor(t, "teardown", func() bool { return env.srv.Stats().LiveConns < live })

		b := env.dial(t, "hier")
		if err := b.Exec("UPDATE Root SET RVal = 'after' WHERE RID = 1"); err != nil {
			t.Fatalf("lock not released after disconnect: %v", err)
		}
		rs, err := b.Query("SELECT RVal FROM Root WHERE RID = 1")
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 || rs.Rows[0]["RVal"] != "after" {
			t.Fatalf("want rolled-back then rewritten row, got %v", rs.Rows)
		}
	})

	t.Run("mvcc-snapshot-release", func(t *testing.T) {
		c := env.dial(t, "mvcc")
		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := c.Exec("UPDATE Root SET RVal = 'dirty' WHERE RID = 2"); err != nil {
			t.Fatal(err)
		}
		if n := env.systems["mvcc"].MVCCServer.ActiveTxns(); n == 0 {
			t.Fatal("expected an active MVCC transaction")
		}
		c.nc.Close()
		waitFor(t, "mvcc txn drain", func() bool {
			return env.systems["mvcc"].MVCCServer.ActiveTxns() == 0
		})
	})

	t.Run("occ-txn-release", func(t *testing.T) {
		c := env.dial(t, "occ")
		if err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := c.Exec("UPDATE Root SET RVal = 'dirty' WHERE RID = 4"); err != nil {
			t.Fatal(err)
		}
		if n := env.systems["occ"].OCC.ActiveTxns(); n == 0 {
			t.Fatal("expected an active OCC transaction")
		}
		c.nc.Close()
		waitFor(t, "occ txn drain", func() bool {
			return env.systems["occ"].OCC.ActiveTxns() == 0
		})
	})
}

// TestPreparedStmtLifecycle checks COM_STMT_CLOSE frees server resources and
// the registry cap rejects with 1461.
func TestPreparedStmtLifecycle(t *testing.T) {
	env := startServer(t, Config{})
	c := env.dial(t, "hier")

	count := func() int64 {
		v, err := c.SysVar("synergy_prepared_stmts")
		if err != nil {
			t.Fatal(err)
		}
		return v.(int64)
	}

	st1, err := c.Prepare(testSelect)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Prepare("UPDATE Root SET RVal = ? WHERE RID = ?")
	if err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 2 {
		t.Fatalf("prepared count %d, want 2", got)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	// COM_STMT_CLOSE has no response; the next sysvar round-trip proves it
	// was processed in order.
	if got := count(); got != 1 {
		t.Fatalf("prepared count after close %d, want 1", got)
	}
	if err := st2.Exec("still-works", int64(1)); err != nil {
		t.Fatalf("surviving statement broken: %v", err)
	}

	for i := int64(1); count() < maxPreparedStmts; i++ {
		if _, err := c.Prepare(testSelect); err != nil {
			t.Fatal(err)
		}
	}
	_, err = c.Prepare(testSelect)
	var me *MySQLError
	if !errors.As(err, &me) || me.Code != errTooManyStmts {
		t.Fatalf("want error %d at the cap, got %v", errTooManyStmts, err)
	}
}

// TestAdmissionQueue fills the execution slots, checks overflow queues (not
// errors), and past the queue bound rejects cleanly with 1040.
func TestAdmissionQueue(t *testing.T) {
	env := startServer(t, Config{Slots: 1, Queue: 2})
	gate := env.srv.Gate()
	if !gate.TryAcquire() {
		t.Fatal("could not occupy the slot")
	}

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		c := env.dial(t, "hier")
		go func(c *Client) {
			_, err := c.Query("SELECT RVal FROM Root WHERE RID = 1")
			done <- err
		}(c)
	}
	waitFor(t, "two queued statements", func() bool { return gate.Waiting() == 2 })

	// Queue is at its bound: the next statement is refused, not queued.
	over := env.dial(t, "hier")
	_, err := over.Query("SELECT RVal FROM Root WHERE RID = 1")
	var me *MySQLError
	if !errors.As(err, &me) || me.Code != errConCount {
		t.Fatalf("want rejection %d, got %v", errConCount, err)
	}
	// The rejected connection is still usable (clean rejection, no hangup).
	if err := over.Ping(); err != nil {
		t.Fatalf("connection broken after rejection: %v", err)
	}

	gate.Release()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued statement failed: %v", err)
		}
	}
	st := gate.Stats()
	if st.Queued != 2 || st.Rejected != 1 {
		t.Fatalf("gate stats %+v, want Queued=2 Rejected=1", st)
	}
}

// TestConnCap checks the connection-level cap answers the handshake with
// 1040 instead of accepting.
func TestConnCap(t *testing.T) {
	env := startServer(t, Config{MaxConns: 1})
	env.dial(t, "hier") // occupies the only slot
	_, err := Dial("inproc", env.addr, "test", "hier")
	var me *MySQLError
	if !errors.As(err, &me) || me.Code != errConCount {
		t.Fatalf("want connect rejection %d, got %v", errConCount, err)
	}
	if got := env.srv.Stats().RejectedConns; got != 1 {
		t.Fatalf("RejectedConns %d, want 1", got)
	}
}

// TestSessionVariables covers mode/reads switching and the sim-cost
// introspection contract.
func TestSessionVariables(t *testing.T) {
	env := startServer(t, Config{})
	c := env.dial(t, "hier")

	if v, _ := c.SysVar("synergy_mode"); v != "hier" {
		t.Fatalf("initial mode %v", v)
	}
	if err := c.Exec("SET synergy_mode = 'occ'"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.SysVar("synergy_mode"); v != "occ" {
		t.Fatalf("mode after switch %v", v)
	}
	if err := c.Exec("SET synergy_mode = 'nope'"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	// Mid-transaction switches are refused.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("SET synergy_mode = 'hier'"); err == nil {
		t.Fatal("mid-txn mode switch accepted")
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}

	if err := c.Exec("SET synergy_reads = 'watermark'"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.SysVar("synergy_reads"); v != "watermark" {
		t.Fatalf("reads %v", v)
	}
	if err := c.Exec("SET synergy_reads = 'sometimes'"); err == nil {
		t.Fatal("bad reads value accepted")
	}

	// Unknown SETs are tolerated (client handshake chatter)...
	if err := c.Exec("SET NAMES utf8"); err != nil {
		t.Fatal(err)
	}
	// ...but unknown sysvar reads are not.
	if _, err := c.SysVar("no_such_thing"); err == nil {
		t.Fatal("unknown sysvar read accepted")
	}

	// Introspection is charge-free: back-to-back reads return the same
	// accumulated cost, and work strictly grows it.
	a, err := c.SimMicros()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.SimMicros()
	if a != b {
		t.Fatalf("sysvar read charged cost: %d then %d", a, b)
	}
	if _, err := c.Query("SELECT RVal FROM Root WHERE RID = 1"); err != nil {
		t.Fatal(err)
	}
	after, _ := c.SimMicros()
	if after <= a {
		t.Fatalf("query did not accrue cost: %d -> %d", a, after)
	}
}

// TestAutocommitToggle checks SET autocommit=0 opens implicit transactions
// and =1 commits the open one.
func TestAutocommitToggle(t *testing.T) {
	env := startServer(t, Config{})
	c := env.dial(t, "mvcc")
	if err := c.Exec("SET autocommit = 0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("INSERT INTO Leaf (LID, L_RID, LVal) VALUES (700, 1, 'implicit')"); err != nil {
		t.Fatal(err)
	}
	// The write is buffered in the implicit transaction; SET autocommit=1
	// commits it (MySQL semantics).
	if err := c.Exec("SET autocommit = 1"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare(testSelect)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := st.Query("implicit")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("implicit transaction not committed: %v", rs.Rows)
	}
}

// TestConflictMapsTo1213 drives two overlapping optimistic transactions and
// checks the loser surfaces as MySQL error 1213 / SQLSTATE 40001.
func TestConflictMapsTo1213(t *testing.T) {
	env := startServer(t, Config{})
	a := env.dial(t, "occ")
	b := env.dial(t, "occ")
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.Exec("UPDATE Root SET RVal = 'a' WHERE RID = 1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Exec("UPDATE Root SET RVal = 'b' WHERE RID = 1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	err := b.Commit()
	var me *MySQLError
	if !errors.As(err, &me) || me.Code != errDeadlock || me.SQLState != "40001" {
		t.Fatalf("want 1213/40001 conflict, got %v", err)
	}
}

// TestConcurrentSessions hammers every backend from concurrent connections
// on disjoint key ranges; run under -race in CI.
func TestConcurrentSessions(t *testing.T) {
	env := startServer(t, Config{})
	const workers, iters = 8, 5
	modes := []string{"hier", "mvcc", "occ"}
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		mode := modes[w%len(modes)]
		base := int64(1000 + 100*w)
		c := env.dial(t, mode)
		go func(c *Client, base int64) {
			done <- func() error {
				st, err := c.Prepare("INSERT INTO Leaf (LID, L_RID, LVal) VALUES (?, ?, ?)")
				if err != nil {
					return err
				}
				sel, err := c.Prepare(testSelect)
				if err != nil {
					return err
				}
				for i := int64(0); i < iters; i++ {
					if err := c.Begin(); err != nil {
						return err
					}
					val := fmt.Sprintf("cc-%d-%d", base, i)
					if err := st.Exec(base+i, (base+i)%4+1, val); err != nil {
						return err
					}
					if err := c.Commit(); err != nil {
						return err
					}
					rs, err := sel.Query(val)
					if err != nil {
						return err
					}
					if len(rs.Rows) != 1 {
						return fmt.Errorf("want 1 row for %s, got %d", val, len(rs.Rows))
					}
				}
				return nil
			}()
		}(c, base)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// --------------------------------------------------------------------------
// Unit tests

func TestLencRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 250, 251, 65535, 65536, 1 << 24, 1<<24 + 7, 1 << 40} {
		b := appendLencInt(nil, v)
		got, off, err := readLencInt(b, 0)
		if err != nil || got != v || off != len(b) {
			t.Fatalf("lenc %d: got %d off %d err %v", v, got, off, err)
		}
	}
}

func TestParseDSN(t *testing.T) {
	d, err := parseDSN("app@inproc(bench)/synergy?mode=occ&reads=watermark")
	if err != nil {
		t.Fatal(err)
	}
	want := dsn{user: "app", network: "inproc", addr: "bench", db: "synergy", mode: "occ", reads: "watermark"}
	if d != want {
		t.Fatalf("dsn %+v, want %+v", d, want)
	}
	d, err = parseDSN("tcp(localhost:3306)")
	if err != nil {
		t.Fatal(err)
	}
	if d.user != "synergy" || d.network != "tcp" || d.addr != "localhost:3306" || d.db != "" {
		t.Fatalf("dsn %+v", d)
	}
	if _, err := parseDSN("no-parens"); err == nil {
		t.Fatal("bad DSN accepted")
	}
	if _, err := parseDSN("inproc(x)?bogus=1"); err == nil {
		t.Fatal("unknown param accepted")
	}
}

func TestGateBounds(t *testing.T) {
	g := NewGate(2, 1)
	if q, err := g.Acquire(); err != nil || q {
		t.Fatalf("first acquire queued=%v err=%v", q, err)
	}
	if q, err := g.Acquire(); err != nil || q {
		t.Fatalf("second acquire queued=%v err=%v", q, err)
	}
	queued := make(chan struct{})
	go func() {
		if q, err := g.Acquire(); err != nil || !q {
			panic(fmt.Sprintf("queued acquire queued=%v err=%v", q, err))
		}
		close(queued)
	}()
	waitFor(t, "waiter", func() bool { return g.Waiting() == 1 })
	if _, err := g.Acquire(); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy, got %v", err)
	}
	g.Release()
	<-queued
}

func TestResultSetColumnTypes(t *testing.T) {
	rs := &phoenix.ResultSet{
		Columns: []string{"a", "b", "c", "d"},
		Rows: []schema.Row{
			{"a": nil, "b": int64(1), "c": 1.5, "d": nil},
			{"a": "x", "b": int64(2), "c": 2.5, "d": nil},
		},
	}
	got := rs.ColumnTypes()
	want := []schema.ColType{schema.TString, schema.TInt, schema.TFloat, schema.TString}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ColumnTypes %v, want %v", got, want)
	}
}

// TestMidHandshakeDisconnect reads the greeting and drops the connection
// before answering; the server must tear the half-connected client down
// without a session to close (regression: the deferred teardown used to call
// Close on a nil Session and panic the process) and keep serving.
func TestMidHandshakeDisconnect(t *testing.T) {
	env := startServer(t, Config{})

	// Health-check-probe shape: connect, read the greeting, hang up.
	nc, err := DialInproc(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	pc := newPacketConn(nc)
	if _, err := pc.readPacket(); err != nil {
		t.Fatalf("greeting: %v", err)
	}
	nc.Close()

	// Malformed-response shape: the handshake parser must error out, not the
	// teardown.
	nc2, err := DialInproc(env.addr)
	if err != nil {
		t.Fatal(err)
	}
	pc2 := newPacketConn(nc2)
	if _, err := pc2.readPacket(); err != nil {
		t.Fatalf("greeting: %v", err)
	}
	if err := pc2.writePacket([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if err := pc2.flush(); err != nil {
		t.Fatal(err)
	}
	nc2.Close()

	waitFor(t, "half-open conns to drain", func() bool {
		return env.srv.Stats().LiveConns == 0
	})

	// The server survived both: a real client still gets full service.
	c := env.dial(t, "hier")
	rs, err := c.Query("SELECT * FROM Root as r, Leaf as l WHERE r.RID = l.L_RID and l.LVal = 'l1'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("post-disconnect query saw %d rows, want 1", len(rs.Rows))
	}
}

// TestGateZeroConfigDefaults: a zero Config must yield the documented
// defaults (8 slots, 16 queued), not a no-queue gate that fast-fails the
// ninth concurrent statement.
func TestGateZeroConfigDefaults(t *testing.T) {
	g := NewGate(0, 0)
	for i := 0; i < 8; i++ {
		if !g.TryAcquire() {
			t.Fatalf("slot %d not free, want 8 default slots", i)
		}
	}
	if g.TryAcquire() {
		t.Fatal("ninth slot free, want exactly 8 default slots")
	}
	queued := make(chan struct{})
	go func() {
		if q, err := g.Acquire(); err != nil || !q {
			panic(fmt.Sprintf("overflow acquire queued=%v err=%v", q, err))
		}
		close(queued)
	}()
	waitFor(t, "waiter", func() bool { return g.Waiting() == 1 })
	g.Release()
	<-queued
}

// TestDecodeUnsignedLonglongOverflow: an unsigned BIGINT above MaxInt64 must
// be refused, not silently wrapped to a negative int64.
func TestDecodeUnsignedLonglongOverflow(t *testing.T) {
	buf := binary.LittleEndian.AppendUint64(nil, math.MaxInt64+1)
	if _, _, err := decodeBinaryValue(buf, 0, typeLonglong, true); err == nil {
		t.Fatal("want out-of-range error for unsigned BIGINT > MaxInt64")
	}
	// MaxInt64 itself still decodes, signed interpretation is untouched.
	buf = binary.LittleEndian.AppendUint64(nil, math.MaxInt64)
	v, _, err := decodeBinaryValue(buf, 0, typeLonglong, true)
	if err != nil || v != int64(math.MaxInt64) {
		t.Fatalf("MaxInt64 decode = %v, %v", v, err)
	}
	buf = binary.LittleEndian.AppendUint64(nil, math.MaxUint64) // -1 signed
	v, _, err = decodeBinaryValue(buf, 0, typeLonglong, false)
	if err != nil || v != int64(-1) {
		t.Fatalf("signed -1 decode = %v, %v", v, err)
	}
}

// TestSysVarUncosted: @@var introspection must charge zero simulated cost by
// construction, independent of response size or per-byte rate.
func TestSysVarUncosted(t *testing.T) {
	env := startServer(t, Config{})
	c := env.dial(t, "hier")
	rs, err := c.Query("SELECT @@synergy_sim_micros")
	if err != nil {
		t.Fatal(err)
	}
	before := rs.Rows[0]["@@synergy_sim_micros"].(int64)
	rs, err = c.Query("SELECT @@version")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0]["@@version"] == nil {
		t.Fatal("no @@version row")
	}
	rs, err = c.Query("SELECT @@synergy_sim_micros")
	if err != nil {
		t.Fatal(err)
	}
	after := rs.Rows[0]["@@synergy_sim_micros"].(int64)
	if after != before {
		t.Fatalf("sysvar reads charged %d simulated micros, want 0", after-before)
	}
}
