package server

import (
	"fmt"
	"net"
	"sync"
)

// The in-process transport: named listeners over net.Pipe, so benches,
// examples and tests can drive the full wire protocol through real net.Conn
// byte streams without opening TCP ports (deterministic, sandbox-friendly).
// The server side Serve()s an inproc listener exactly like a TCP one; the
// client side Dial()s it by name (the driver's "inproc" network).

var inprocMu sync.Mutex
var inprocListeners = map[string]*InprocListener{}

// InprocListener is a net.Listener whose Accept receives the server half of
// a net.Pipe for every DialInproc against its name.
type InprocListener struct {
	name   string
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

// inprocAddr names an in-process endpoint.
type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }

// ListenInproc registers a named in-process listener.
func ListenInproc(name string) (*InprocListener, error) {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if _, dup := inprocListeners[name]; dup {
		return nil, fmt.Errorf("server: inproc address %q already listening", name)
	}
	l := &InprocListener{name: name, ch: make(chan net.Conn), closed: make(chan struct{})}
	inprocListeners[name] = l
	return l, nil
}

// DialInproc connects to a named in-process listener.
func DialInproc(name string) (net.Conn, error) {
	inprocMu.Lock()
	l := inprocListeners[name]
	inprocMu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("server: no inproc listener %q", name)
	}
	client, srv := net.Pipe()
	select {
	case l.ch <- srv:
		return client, nil
	case <-l.closed:
		client.Close()
		srv.Close()
		return nil, fmt.Errorf("server: inproc listener %q closed", name)
	}
}

// Accept waits for the next in-process connection.
func (l *InprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("server: inproc listener %q closed", l.name)
	}
}

// Close unregisters the listener and fails pending Accepts and Dials.
func (l *InprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		inprocMu.Lock()
		if inprocListeners[l.name] == l {
			delete(inprocListeners, l.name)
		}
		inprocMu.Unlock()
	})
	return nil
}

// Addr returns the listener's in-process name.
func (l *InprocListener) Addr() net.Addr { return inprocAddr(l.name) }
