package server

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"

	"synergy/internal/schema"
)

// The database/sql driver, registered as "synergy". DSNs follow the familiar
// mysql shape:
//
//	[user@]network(address)[/db][?mode=<backend>&reads=<stale|watermark>]
//
// e.g. "app@inproc(bench)/synergy?mode=occ&reads=watermark". The db segment
// and the mode parameter both select a backend; mode wins when both are set.
// Zero-argument Exec/Query go over the text protocol; statements with
// placeholders take the server-side prepared path (binary protocol).

func init() {
	sql.Register("synergy", &sqlDriver{})
}

type sqlDriver struct{}

// dsn is a parsed driver DSN.
type dsn struct {
	user, network, addr, db string
	mode, reads             string
}

func parseDSN(s string) (dsn, error) {
	var d dsn
	if i := strings.IndexByte(s, '@'); i >= 0 {
		d.user, s = s[:i], s[i+1:]
	}
	open := strings.IndexByte(s, '(')
	closeP := strings.IndexByte(s, ')')
	if open < 0 || closeP < open {
		return d, fmt.Errorf("synergy driver: DSN wants network(address), got %q", s)
	}
	d.network, d.addr = s[:open], s[open+1:closeP]
	rest := s[closeP+1:]
	var query string
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		rest, query = rest[:i], rest[i+1:]
	}
	d.db = strings.TrimPrefix(rest, "/")
	for _, kv := range strings.Split(query, "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "mode":
			d.mode = v
		case "reads":
			d.reads = v
		default:
			return d, fmt.Errorf("synergy driver: unknown DSN parameter %q", k)
		}
	}
	if d.user == "" {
		d.user = "synergy"
	}
	return d, nil
}

func (*sqlDriver) Open(name string) (driver.Conn, error) {
	d, err := parseDSN(name)
	if err != nil {
		return nil, err
	}
	db := d.db
	if d.mode != "" {
		db = d.mode
	}
	c, err := Dial(d.network, d.addr, d.user, db)
	if err != nil {
		return nil, err
	}
	if d.reads != "" {
		if err := c.Exec("SET synergy_reads = '" + d.reads + "'"); err != nil {
			c.Close()
			return nil, err
		}
	}
	return &dconn{c: c}, nil
}

// dconn adapts Client to driver.Conn (+ Execer/Queryer/Pinger fast paths).
type dconn struct {
	c *Client
}

func (dc *dconn) Prepare(query string) (driver.Stmt, error) {
	st, err := dc.c.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &dstmt{st: st}, nil
}

func (dc *dconn) Close() error { return dc.c.Close() }

func (dc *dconn) Begin() (driver.Tx, error) {
	if err := dc.c.Begin(); err != nil {
		return nil, err
	}
	return &dtx{c: dc.c}, nil
}

func (dc *dconn) Ping() error { return dc.c.Ping() }

// Exec handles zero-argument statements over the text protocol; with
// placeholders it defers to the prepared path (ErrSkip).
func (dc *dconn) Exec(query string, args []driver.Value) (driver.Result, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	if err := dc.c.Exec(query); err != nil {
		return nil, err
	}
	return noResult{}, nil
}

// Query handles zero-argument queries over the text protocol. Rows stream:
// each driver-level Next reads one row packet off the wire.
func (dc *dconn) Query(query string, args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	rows, err := dc.c.QueryStream(query)
	if err != nil {
		return nil, err
	}
	return &drows{rows: rows}, nil
}

// noResult reports zero affected rows: the engine does not track per-row
// write counts (a documented deviation).
type noResult struct{}

func (noResult) LastInsertId() (int64, error) { return 0, nil }
func (noResult) RowsAffected() (int64, error) { return 0, nil }

type dtx struct{ c *Client }

func (t *dtx) Commit() error   { return t.c.Commit() }
func (t *dtx) Rollback() error { return t.c.Rollback() }

// dstmt adapts ClientStmt to driver.Stmt.
type dstmt struct {
	st *ClientStmt
}

func (s *dstmt) Close() error  { return s.st.Close() }
func (s *dstmt) NumInput() int { return s.st.NumParams() }

func convertArgs(args []driver.Value) ([]schema.Value, error) {
	out := make([]schema.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = nil
		case int64:
			out[i] = x
		case float64:
			out[i] = x
		case string:
			out[i] = x
		case []byte:
			out[i] = string(x)
		case bool:
			if x {
				out[i] = int64(1)
			} else {
				out[i] = int64(0)
			}
		default:
			return nil, fmt.Errorf("synergy driver: unsupported argument type %T", a)
		}
	}
	return out, nil
}

func (s *dstmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	if err := s.st.Exec(vals...); err != nil {
		return nil, err
	}
	return noResult{}, nil
}

func (s *dstmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := convertArgs(args)
	if err != nil {
		return nil, err
	}
	rows, err := s.st.QueryStream(vals...)
	if err != nil {
		return nil, err
	}
	return &drows{rows: rows}, nil
}

// drows adapts an in-flight ClientRows to driver.Rows. database/sql closes
// the rows before reusing the connection, which drains any unread packets.
type drows struct {
	rows *ClientRows
}

func (r *drows) Columns() []string { return r.rows.Columns() }
func (r *drows) Close() error      { return r.rows.Close() }

func (r *drows) Next(dest []driver.Value) error {
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	vals, err := r.rows.Values()
	if err != nil {
		return err
	}
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			dest[i] = nil
		case int64:
			dest[i] = x
		case float64:
			dest[i] = x
		case string:
			dest[i] = x
		default:
			return fmt.Errorf("synergy driver: unsupported column value %T", x)
		}
	}
	return nil
}
