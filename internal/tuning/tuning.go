// Package tuning is the schema-relationships-UNAWARE view advisor behind the
// MVCC-UA system (§IX-D2). The paper obtained MVCC-UA's views by running the
// SQL Server 2012 Database Engine Tuning Advisor over the profiled workload;
// this package implements the same role with the published algorithm that
// tool descends from: the workload-driven, benefit/storage greedy selection
// of Agrawal, Chaudhuri and Narasayya (VLDB 2000) [16].
//
// The advisor is intentionally oblivious to key/foreign-key structure: it
// materializes whole join (and aggregate) results per query, trading
// unbounded storage and maintenance cost for read benefit — exactly the
// design point the paper contrasts Synergy against (§III-3).
package tuning

import (
	"fmt"
	"sort"
	"strings"

	"synergy/internal/sqlparser"
)

// Stats summarizes the database the advisor tunes for.
type Stats struct {
	// Rows per table.
	Rows map[string]int64
	// AvgRowBytes per table.
	AvgRowBytes map[string]int64
}

func (s Stats) rows(table string) int64 {
	if n, ok := s.Rows[table]; ok {
		return n
	}
	return 1
}

func (s Stats) rowBytes(table string) int64 {
	if n, ok := s.AvgRowBytes[table]; ok {
		return n
	}
	return 100
}

// Candidate is a syntactically relevant view for one workload query: the
// query's full join result, aggregated when the query aggregates.
type Candidate struct {
	Query     *sqlparser.SelectStmt
	QueryName string
	Tables    []string
	Aggregate bool
	// EstRows and EstBytes estimate the materialized size.
	EstRows  int64
	EstBytes int64
	// Benefit estimates the per-execution scan saving (rows examined on
	// base tables minus rows examined on the view).
	Benefit float64
}

// Name renders a stable identifier.
func (c *Candidate) Name() string {
	return "UA_" + c.QueryName + "_" + strings.Join(c.Tables, "_")
}

// Advisor selects views under a storage budget.
type Advisor struct {
	// Budget is the storage allowance in bytes (the tuning advisor's
	// standard knob). Zero means 10% of the base database size.
	Budget int64
}

// Candidates enumerates per-query join materializations, the syntactically
// relevant views of [16] restricted (as [16] §4 does for practicality) to
// one view per query covering all its joined tables.
func Candidates(workload map[string]*sqlparser.SelectStmt, stats Stats) []*Candidate {
	names := make([]string, 0, len(workload))
	for n := range workload {
		names = append(names, n)
	}
	sort.Strings(names)

	var out []*Candidate
	for _, qn := range names {
		sel := workload[qn]
		var tables []string
		derived := false
		for _, ref := range sel.From {
			if ref.Sub != nil {
				derived = true
				for _, sub := range ref.Sub.From {
					if sub.Sub == nil {
						tables = append(tables, sub.Name)
					}
				}
				continue
			}
			tables = append(tables, ref.Name)
		}
		if len(tables) < 2 && !derived {
			continue // nothing joined: no view candidate
		}
		c := &Candidate{Query: sel, QueryName: qn, Tables: tables, Aggregate: len(sel.GroupBy) > 0}
		c.EstRows, c.EstBytes = estimateSize(sel, tables, stats)
		c.Benefit = estimateBenefit(sel, tables, stats, c.EstRows)
		out = append(out, c)
	}
	return out
}

// estimateSize sizes the materialized result: FK-join results are bounded by
// the largest participating table; aggregation collapses the fact table to
// the next-largest (dimension) cardinality with one narrow row per group.
func estimateSize(sel *sqlparser.SelectStmt, tables []string, stats Stats) (rows, bytes int64) {
	var maxRows, secondRows, widthSum int64
	for _, t := range tables {
		r := stats.rows(t)
		if r > maxRows {
			secondRows = maxRows
			maxRows = r
		} else if r > secondRows {
			secondRows = r
		}
		widthSum += stats.rowBytes(t)
	}
	rows = maxRows
	if len(sel.GroupBy) > 0 {
		if secondRows > 0 {
			rows = secondRows
		}
		widthSum = 64
	}
	return rows, rows * widthSum
}

// estimateBenefit scores a candidate: executing the query on base tables
// scans roughly the sum of the joined tables; on the view it scans the view
// (or an indexed fraction when the query filters).
func estimateBenefit(sel *sqlparser.SelectStmt, tables []string, stats Stats, viewRows int64) float64 {
	var baseScan int64
	for _, t := range tables {
		baseScan += stats.rows(t)
	}
	viewScan := viewRows
	if len(sel.FilterPredicates()) > 0 {
		viewScan = viewRows/1000 + 1 // filter served by a view index
	}
	return float64(baseScan - viewScan)
}

// Recommend greedily picks candidates by benefit-per-byte under the budget
// (the knapsack heuristic of [16] §6.2).
func Recommend(cands []*Candidate, stats Stats, budget int64) []*Candidate {
	if budget <= 0 {
		var base int64
		for t := range stats.Rows {
			base += stats.rows(t) * stats.rowBytes(t)
		}
		budget = base / 10 // default: 10% of the database
	}
	sorted := append([]*Candidate(nil), cands...)
	sort.SliceStable(sorted, func(i, j int) bool {
		di := density(sorted[i])
		dj := density(sorted[j])
		if di != dj {
			return di > dj
		}
		return sorted[i].Name() < sorted[j].Name()
	})
	var out []*Candidate
	var used int64
	for _, c := range sorted {
		if c.Benefit <= 0 || c.EstBytes <= 0 {
			continue
		}
		if used+c.EstBytes > budget {
			continue
		}
		out = append(out, c)
		used += c.EstBytes
	}
	return out
}

func density(c *Candidate) float64 {
	if c.EstBytes <= 0 {
		return 0
	}
	return c.Benefit / float64(c.EstBytes)
}

// Describe renders a recommendation report.
func Describe(recs []*Candidate) string {
	var b strings.Builder
	for _, c := range recs {
		fmt.Fprintf(&b, "%s: tables=%s rows≈%d bytes≈%d benefit≈%.0f\n",
			c.QueryName, strings.Join(c.Tables, ","), c.EstRows, c.EstBytes, c.Benefit)
	}
	return b.String()
}
