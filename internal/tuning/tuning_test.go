package tuning

import (
	"strings"
	"testing"

	"synergy/internal/sqlparser"
)

// tpcwStats approximates the 1M-customer TPC-W database of §IX-D1.
func tpcwStats() Stats {
	return Stats{
		Rows: map[string]int64{
			"Customer":   1_000_000,
			"Address":    2_000_000,
			"Country":    92,
			"Orders":     10_000_000,
			"Order_line": 30_000_000,
			"Item":       10_000_000,
			"Author":     2_500_000,
		},
		AvgRowBytes: map[string]int64{
			"Customer": 300, "Address": 120, "Country": 60,
			"Orders": 180, "Order_line": 90, "Item": 400, "Author": 180,
		},
	}
}

func tpcwJoinWorkload(t *testing.T) map[string]*sqlparser.SelectStmt {
	t.Helper()
	qs := map[string]string{
		"Q2": `SELECT * FROM Customer c, Orders o WHERE c.c_id = o.o_c_id AND c.c_uname = ?
		       ORDER BY o.o_date DESC LIMIT 1`,
		"Q4": `SELECT * FROM Author a, Item i WHERE a.a_id = i.i_a_id AND i.i_subject = ?
		       ORDER BY i.i_title LIMIT 50`,
		"Q10": `SELECT i.i_id, i.i_title, SUM(ol.ol_qty) AS qty
		        FROM Author a, Item i, Order_line ol
		        WHERE a.a_id = i.i_a_id AND i.i_id = ol.ol_i_id AND i.i_subject = ?
		        GROUP BY i.i_id ORDER BY qty DESC LIMIT 50`,
		"NonJoin": `SELECT * FROM Customer WHERE c_id = ?`,
	}
	out := map[string]*sqlparser.SelectStmt{}
	for n, src := range qs {
		sel, err := sqlparser.ParseSelect(src)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		out[n] = sel
	}
	return out
}

func TestCandidatesSkipNonJoins(t *testing.T) {
	cands := Candidates(tpcwJoinWorkload(t), tpcwStats())
	for _, c := range cands {
		if c.QueryName == "NonJoin" {
			t.Fatal("single-table query should produce no candidate")
		}
	}
	if len(cands) != 3 {
		t.Fatalf("candidates = %d, want 3", len(cands))
	}
}

func TestAggregateViewIsCompact(t *testing.T) {
	cands := Candidates(tpcwJoinWorkload(t), tpcwStats())
	var q10, q4 *Candidate
	for _, c := range cands {
		switch c.QueryName {
		case "Q10":
			q10 = c
		case "Q4":
			q4 = c
		}
	}
	if q10 == nil || q4 == nil {
		t.Fatal("missing candidates")
	}
	if !q10.Aggregate {
		t.Fatal("Q10 candidate should be aggregated")
	}
	// The aggregated bestseller view must be far denser (benefit per
	// byte) than materializing the Author-Item join.
	if density(q10) <= density(q4) {
		t.Fatalf("Q10 density %.3g should exceed Q4 density %.3g", density(q10), density(q4))
	}
}

// The headline behavior the paper reports for the tuning advisor: under the
// default budget it materializes only the bestseller (Q10) view —
// "MVCC-UA utilizes only one materialized view" (§IX-D4).
func TestDefaultBudgetPicksOnlyQ10(t *testing.T) {
	stats := tpcwStats()
	cands := Candidates(tpcwJoinWorkload(t), stats)
	recs := Recommend(cands, stats, 0)
	if len(recs) != 1 {
		t.Fatalf("recommended %d views, want 1:\n%s", len(recs), Describe(recs))
	}
	if recs[0].QueryName != "Q10" {
		t.Fatalf("recommended %s, want Q10", recs[0].QueryName)
	}
}

func TestLargerBudgetPicksMore(t *testing.T) {
	stats := tpcwStats()
	cands := Candidates(tpcwJoinWorkload(t), stats)
	recs := Recommend(cands, stats, 1<<62)
	if len(recs) < 2 {
		t.Fatalf("unbounded budget should admit more views, got %d", len(recs))
	}
}

func TestZeroBenefitExcluded(t *testing.T) {
	stats := tpcwStats()
	sel, _ := sqlparser.ParseSelect("SELECT * FROM Country a, Country2 b WHERE a.co_id = b.co_id")
	cands := Candidates(map[string]*sqlparser.SelectStmt{"tiny": sel}, stats)
	// Tiny join: view scan saves nothing measurable once rounded; it must
	// still never be picked over the budget's better uses, and with a
	// degenerate benefit <= 0 it is skipped outright.
	for _, c := range cands {
		c.Benefit = 0
	}
	if recs := Recommend(cands, stats, 1<<40); len(recs) != 0 {
		t.Fatalf("zero-benefit candidates recommended: %v", Describe(recs))
	}
}

func TestDescribeAndName(t *testing.T) {
	cands := Candidates(tpcwJoinWorkload(t), tpcwStats())
	text := Describe(cands)
	if !strings.Contains(text, "Q10") {
		t.Fatalf("describe output missing Q10: %s", text)
	}
	for _, c := range cands {
		if !strings.HasPrefix(c.Name(), "UA_") {
			t.Fatalf("name = %q", c.Name())
		}
	}
}
