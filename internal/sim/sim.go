// Package sim provides the simulated-time substrate that every component of
// the reproduction is built on.
//
// The paper's evaluation (§IX) reports request response times measured on an
// eight node Amazon EC2 cluster. This repository replaces the physical
// cluster with a deterministic simulation: components perform their real work
// (rows are stored, scanned, joined, locked), and every action that would
// cost wall-clock time on the testbed — an RPC round trip, a WAL append, a
// row moved over the network — charges simulated microseconds to the request
// that performed it. Nothing ever sleeps, so experiments are fast and results
// are reproducible bit-for-bit.
//
// A Ctx represents one in-flight request (one benchmark statement, one
// transaction). It accumulates the simulated latency of all work done on its
// behalf; Elapsed reports the virtual response time, which is the metric τ
// used throughout the paper's figures.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Micros is a duration in simulated microseconds.
type Micros int64

// Common conversions.
func (m Micros) Milliseconds() float64 { return float64(m) / 1000.0 }
func (m Micros) Seconds() float64      { return float64(m) / 1e6 }

// Duration converts a simulated duration to a time.Duration for display.
func (m Micros) Duration() time.Duration { return time.Duration(m) * time.Microsecond }

func (m Micros) String() string {
	switch {
	case m >= 1e6:
		return fmt.Sprintf("%.2fs", m.Seconds())
	case m >= 1000:
		return fmt.Sprintf("%.2fms", m.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(m))
	}
}

// FromMillis builds a Micros value from a (possibly fractional) millisecond
// count. Cost-model constants are most naturally written in milliseconds
// because that is the unit the paper reports.
func FromMillis(ms float64) Micros { return Micros(ms * 1000) }

// Ctx is the simulated-time context of a single request. It is carried
// through every layer (store, SQL executor, transaction layer) in the same
// way a context.Context would be, and accumulates virtual latency.
//
// A Ctx is safe for concurrent use: a request that fans out work across
// simulated cluster nodes may charge from several goroutines.
type Ctx struct {
	elapsed atomic.Int64 // simulated microseconds

	// Counters give tests and the benchmark harness visibility into the
	// physical work performed, independent of the latency calibration.
	rpcs           atomic.Int64
	rowsScanned    atomic.Int64
	rowsReturned   atomic.Int64
	bytesMoved     atomic.Int64
	locks          atomic.Int64
	restarts       atomic.Int64
	occRetries     atomic.Int64
	staleReads     atomic.Int64
	staleLag       atomic.Int64
	watermarkWaits atomic.Int64
	queueWaits     atomic.Int64
	queueWaitTime  atomic.Int64

	// firstRow records the elapsed time at which the request produced its
	// first result row, stored as elapsed+1 so zero means "not yet marked".
	// The serving wire layer marks it as it encodes the first row packet,
	// so streamed and materialized responses measure the same event: a
	// streamed scan marks after one chunk, a materialized one only after
	// the whole result was buffered.
	firstRow atomic.Int64
}

// NewCtx returns a fresh request context with zero elapsed time.
func NewCtx() *Ctx { return &Ctx{} }

// Charge adds d simulated time to the request.
func (c *Ctx) Charge(d Micros) {
	if c == nil || d <= 0 {
		return
	}
	c.elapsed.Add(int64(d))
}

// Elapsed reports the simulated response time accumulated so far.
func (c *Ctx) Elapsed() Micros {
	if c == nil {
		return 0
	}
	return Micros(c.elapsed.Load())
}

// Fork returns a child context for one branch of a parallel fan-out (a
// scatter-gather scan, a parallel view refresh). The branch charges its own
// work to the child; Join folds the children back into the parent when the
// fan-out completes.
func (c *Ctx) Fork() *Ctx { return NewCtx() }

// Join merges forked children back into c. Elapsed time advances by the
// maximum child elapsed — concurrent branches overlap in wall-clock time, so
// the request waits only for the slowest one — while the physical work
// counters advance by the sum, since every branch's rows and RPCs are real
// work regardless of overlap.
func (c *Ctx) Join(children ...*Ctx) {
	if c == nil {
		return
	}
	var longest int64
	for _, ch := range children {
		if ch == nil {
			continue
		}
		if e := ch.elapsed.Load(); e > longest {
			longest = e
		}
		c.addCounters(ch)
	}
	c.elapsed.Add(longest)
}

// JoinWidth merges forked children like Join, but models a bounded worker
// pool of the given width instead of unlimited concurrency: children are
// scheduled in submission order, each starting on the lane that frees
// earliest, and elapsed advances by the resulting makespan. For n
// equal-cost children it charges ceil(n/width) rounds of the child cost —
// the shared scan pool's real completion time — rather than a single round.
// A width of zero or >= len(children) degenerates to Join.
func (c *Ctx) JoinWidth(width int, children ...*Ctx) {
	if c == nil {
		return
	}
	if width <= 0 || width >= len(children) {
		c.Join(children...)
		return
	}
	lanes := make([]int64, width)
	for _, ch := range children {
		if ch == nil {
			continue
		}
		li := 0
		for i := 1; i < width; i++ {
			if lanes[i] < lanes[li] {
				li = i
			}
		}
		lanes[li] += ch.elapsed.Load()
		c.addCounters(ch)
	}
	var makespan int64
	for _, l := range lanes {
		if l > makespan {
			makespan = l
		}
	}
	c.elapsed.Add(makespan)
}

// addCounters folds one child's work counters into c (elapsed excluded —
// Join/JoinWidth own the overlap semantics).
func (c *Ctx) addCounters(ch *Ctx) {
	c.rpcs.Add(ch.rpcs.Load())
	c.rowsScanned.Add(ch.rowsScanned.Load())
	c.rowsReturned.Add(ch.rowsReturned.Load())
	c.bytesMoved.Add(ch.bytesMoved.Load())
	c.locks.Add(ch.locks.Load())
	c.restarts.Add(ch.restarts.Load())
	c.occRetries.Add(ch.occRetries.Load())
	c.staleReads.Add(ch.staleReads.Load())
	c.staleLag.Add(ch.staleLag.Load())
	c.watermarkWaits.Add(ch.watermarkWaits.Load())
	c.queueWaits.Add(ch.queueWaits.Load())
	c.queueWaitTime.Add(ch.queueWaitTime.Load())
}

// Reset zeroes the context so it can be reused for a new request.
func (c *Ctx) Reset() {
	c.elapsed.Store(0)
	c.rpcs.Store(0)
	c.rowsScanned.Store(0)
	c.rowsReturned.Store(0)
	c.bytesMoved.Store(0)
	c.locks.Store(0)
	c.restarts.Store(0)
	c.occRetries.Store(0)
	c.staleReads.Store(0)
	c.staleLag.Store(0)
	c.watermarkWaits.Store(0)
	c.queueWaits.Store(0)
	c.queueWaitTime.Store(0)
	c.firstRow.Store(0)
}

// MarkFirstRow records the current elapsed time as the request's
// time-to-first-row. Only the first call per request (or per ResetFirstRow)
// takes effect; later calls are no-ops.
func (c *Ctx) MarkFirstRow() {
	if c == nil {
		return
	}
	c.firstRow.CompareAndSwap(0, c.elapsed.Load()+1)
}

// ResetFirstRow clears the time-to-first-row mark so a long-lived context
// (a server connection serving many statements) can measure each statement
// independently.
func (c *Ctx) ResetFirstRow() {
	if c != nil {
		c.firstRow.Store(0)
	}
}

// TimeToFirstRow reports the elapsed simulated time at which the first
// result row was produced. ok is false if no row was marked (no streaming
// read ran, or the result was empty).
func (c *Ctx) TimeToFirstRow() (Micros, bool) {
	if c == nil {
		return 0, false
	}
	v := c.firstRow.Load()
	if v == 0 {
		return 0, false
	}
	return Micros(v - 1), true
}

// CountRPC records an RPC round trip (the latency is charged separately by
// the cost model so that counters stay calibration-independent).
func (c *Ctx) CountRPC() {
	if c != nil {
		c.rpcs.Add(1)
	}
}

// CountRowsScanned records rows examined server-side.
func (c *Ctx) CountRowsScanned(n int) {
	if c != nil {
		c.rowsScanned.Add(int64(n))
	}
}

// CountRowsReturned records rows shipped back to the client.
func (c *Ctx) CountRowsReturned(n int) {
	if c != nil {
		c.rowsReturned.Add(int64(n))
	}
}

// CountBytesMoved records payload bytes crossing the simulated network.
func (c *Ctx) CountBytesMoved(n int) {
	if c != nil {
		c.bytesMoved.Add(int64(n))
	}
}

// CountLock records one lock acquire/release cycle.
func (c *Ctx) CountLock() {
	if c != nil {
		c.locks.Add(1)
	}
}

// CountRestart records one dirty-read scan restart (§VIII-C).
func (c *Ctx) CountRestart() {
	if c != nil {
		c.restarts.Add(1)
	}
}

// CountOCCRetry records one optimistic-transaction validation abort that
// was retried from a fresh snapshot.
func (c *Ctx) CountOCCRetry() {
	if c != nil {
		c.occRetries.Add(1)
	}
}

// CountStaleRead records one read that observed an asynchronously maintained
// view lagging its snapshot, with the observed lag in timestamp units
// (commits the view has not yet applied as of the reader's snapshot).
func (c *Ctx) CountStaleRead(lag int64) {
	if c != nil {
		c.staleReads.Add(1)
		if lag > 0 {
			c.staleLag.Add(lag)
		}
	}
}

// CountWatermarkWait records one read that blocked until a view's freshness
// watermark covered its snapshot.
func (c *Ctx) CountWatermarkWait() {
	if c != nil {
		c.watermarkWaits.Add(1)
	}
}

// CountQueueWait records one server-side operation that queued behind a
// region server's outstanding load under the per-server queueing model,
// with the simulated wait it paid.
func (c *Ctx) CountQueueWait(wait Micros) {
	if c != nil {
		c.queueWaits.Add(1)
		c.queueWaitTime.Add(int64(wait))
	}
}

// Stats is a snapshot of the work counters of a Ctx.
type Stats struct {
	RPCs         int64
	RowsScanned  int64
	RowsReturned int64
	BytesMoved   int64
	Locks        int64
	Restarts     int64
	OCCRetries   int64
	// StaleReads counts reads that observed an async-maintained view behind
	// the reader's snapshot; StaleLag is their summed lag in timestamp units.
	StaleReads int64
	StaleLag   int64
	// WatermarkWaits counts reads that blocked on a view freshness watermark.
	WatermarkWaits int64
	// QueueWaits counts server-side operations that queued behind a region
	// server's outstanding load; QueueWaitTime is their summed simulated wait.
	QueueWaits    int64
	QueueWaitTime Micros
	// TTFR is the elapsed simulated time at which the request produced its
	// first result row (zero when nothing marked one — see MarkFirstRow).
	TTFR    Micros
	Elapsed Micros
}

// Snapshot returns the current work counters.
func (c *Ctx) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		RPCs:           c.rpcs.Load(),
		RowsScanned:    c.rowsScanned.Load(),
		RowsReturned:   c.rowsReturned.Load(),
		BytesMoved:     c.bytesMoved.Load(),
		Locks:          c.locks.Load(),
		Restarts:       c.restarts.Load(),
		OCCRetries:     c.occRetries.Load(),
		StaleReads:     c.staleReads.Load(),
		StaleLag:       c.staleLag.Load(),
		WatermarkWaits: c.watermarkWaits.Load(),
		QueueWaits:     c.queueWaits.Load(),
		QueueWaitTime:  Micros(c.queueWaitTime.Load()),
		Elapsed:        c.Elapsed(),
	}
	if ttfr, ok := c.TimeToFirstRow(); ok {
		s.TTFR = ttfr
	}
	return s
}
