package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// RNG is a deterministic random source with named sub-streams. Experiments
// derive one stream per concern ("datagen/customer", "rep/3", ...) so that
// changing how much randomness one component consumes never perturbs another
// component's values — a property the reproducibility of every figure
// depends on.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a deterministic source rooted at seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Derive returns an independent sub-stream identified by name.
func (g *RNG) Derive(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	sub := g.seed ^ int64(h.Sum64())
	return NewRNG(sub)
}

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal float64.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// IntRange returns a uniform int in [lo, hi] inclusive.
func (g *RNG) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Jitter returns v scaled by a factor drawn from N(1, sd), floored at 10% of
// v. It models run-to-run measurement noise so repeated experiment
// repetitions produce a meaningful standard error, exactly as the paper's 10
// repetitions do.
func (g *RNG) Jitter(v Micros, sd float64) Micros {
	f := 1 + g.NormFloat64()*sd
	if f < 0.1 {
		f = 0.1
	}
	return Micros(float64(v) * f)
}

const alphanum = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// String returns a random alphanumeric string with length in [lo, hi].
func (g *RNG) String(lo, hi int) string {
	n := g.IntRange(lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphanum[g.Intn(len(alphanum))]
	}
	return string(b)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Zipf draws ranks in [0, n) with P(k) ∝ 1/(k+1)^s — the skewed key
// popularity of real NoSQL traffic (YCSB's zipfian request distribution).
// Rank 0 is the hottest key. s == 0 degenerates to uniform; s around 0.99
// is the classic YCSB hot-key skew; s > 1 concentrates further.
//
// Sampling is exact inverse-CDF over a precomputed cumulative table rather
// than the rejection approximation, so it is valid for any s >= 0 (the
// standard-library Zipf requires s > 1) and costs one uniform draw plus a
// binary search per sample. The table is O(n) floats built once; workload
// keyspaces in the millions stay cheap to construct.
type Zipf struct {
	g   *RNG
	cum []float64 // cum[k] = P(rank <= k), strictly increasing to 1
}

// NewZipf builds a Zipf sampler over n ranks with exponent s, drawing from g.
func NewZipf(g *RNG, n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	// Pin the tail exactly so a draw can never search past the last rank.
	cum[n-1] = 1
	return &Zipf{g: g, cum: cum}
}

// N reports the rank-space size.
func (z *Zipf) N() int { return len(z.cum) }

// Next draws one rank; 0 is the hottest.
func (z *Zipf) Next() int {
	u := z.g.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Share reports the probability mass of the top k ranks — the hot-head share
// a balancer must spread (1.0 when k covers the whole keyspace).
func (z *Zipf) Share(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cum) {
		return 1
	}
	return z.cum[k-1]
}
