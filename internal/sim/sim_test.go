package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMicrosString(t *testing.T) {
	cases := []struct {
		in   Micros
		want string
	}{
		{500, "500µs"},
		{1500, "1.50ms"},
		{2_500_000, "2.50s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Micros(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromMillis(t *testing.T) {
	if got := FromMillis(1.5); got != 1500 {
		t.Fatalf("FromMillis(1.5) = %d, want 1500", got)
	}
	if got := FromMillis(0.35); got != 350 {
		t.Fatalf("FromMillis(0.35) = %d, want 350", got)
	}
}

func TestCtxChargeAccumulates(t *testing.T) {
	ctx := NewCtx()
	ctx.Charge(100)
	ctx.Charge(250)
	if got := ctx.Elapsed(); got != 350 {
		t.Fatalf("Elapsed = %d, want 350", got)
	}
	ctx.Reset()
	if got := ctx.Elapsed(); got != 0 {
		t.Fatalf("Elapsed after Reset = %d, want 0", got)
	}
}

func TestCtxChargeIgnoresNonPositive(t *testing.T) {
	ctx := NewCtx()
	ctx.Charge(0)
	ctx.Charge(-5)
	if got := ctx.Elapsed(); got != 0 {
		t.Fatalf("Elapsed = %d, want 0", got)
	}
}

func TestNilCtxIsSafe(t *testing.T) {
	var ctx *Ctx
	ctx.Charge(100) // must not panic
	ctx.CountRPC()
	ctx.CountLock()
	if ctx.Elapsed() != 0 {
		t.Fatal("nil ctx should report zero elapsed")
	}
	if s := ctx.Snapshot(); s.RPCs != 0 {
		t.Fatal("nil ctx snapshot should be zero")
	}
}

func TestCtxConcurrentCharge(t *testing.T) {
	ctx := NewCtx()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				ctx.Charge(1)
				ctx.CountRPC()
				ctx.CountRowsScanned(2)
			}
		}()
	}
	wg.Wait()
	if got := ctx.Elapsed(); got != workers*per {
		t.Fatalf("Elapsed = %d, want %d", got, workers*per)
	}
	s := ctx.Snapshot()
	if s.RPCs != workers*per {
		t.Fatalf("RPCs = %d, want %d", s.RPCs, workers*per)
	}
	if s.RowsScanned != 2*workers*per {
		t.Fatalf("RowsScanned = %d, want %d", s.RowsScanned, 2*workers*per)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Derive("stream")
	b := NewRNG(42).Derive("stream")
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("derived streams diverge at %d: %d vs %d", i, x, y)
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	root := NewRNG(42)
	a := root.Derive("a")
	b := root.Derive("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams %q and %q coincide %d/64 times; expected independence", "a", "b", same)
	}
}

func TestRNGIntRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d out of range", v)
		}
	}
	if g.IntRange(7, 7) != 7 {
		t.Fatal("degenerate range should return lo")
	}
	if g.IntRange(9, 3) != 9 {
		t.Fatal("inverted range should return lo")
	}
}

func TestRNGString(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 100; i++ {
		s := g.String(3, 8)
		if len(s) < 3 || len(s) > 8 {
			t.Fatalf("String(3,8) length %d out of range", len(s))
		}
	}
}

func TestJitterStaysPositive(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 10_000; i++ {
		if v := g.Jitter(FromMillis(10), 0.5); v <= 0 {
			t.Fatalf("Jitter produced non-positive %d", v)
		}
	}
}

func TestPerByteCostMul(t *testing.T) {
	var c PerByteCost = 2 // 2 ns per byte
	if got := c.Mul(1000); got != 2 {
		t.Fatalf("Mul(1000) = %d, want 2", got)
	}
	if got := c.Mul(1_000_000); got != 2000 {
		t.Fatalf("Mul(1e6) = %d, want 2000", got)
	}
}

// Property: charging any sequence of non-negative amounts yields their sum.
func TestCtxChargeSumProperty(t *testing.T) {
	f := func(amounts []uint16) bool {
		ctx := NewCtx()
		var want int64
		for _, a := range amounts {
			ctx.Charge(Micros(a))
			want += int64(a)
		}
		return int64(ctx.Elapsed()) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Derive is a pure function of (seed, name).
func TestDeriveDeterministicProperty(t *testing.T) {
	f := func(seed int64, name string) bool {
		return NewRNG(seed).Derive(name).Int63() == NewRNG(seed).Derive(name).Int63()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Fork/Join models scatter-gather: elapsed advances by the slowest branch,
// work counters by the sum of all branches.
func TestForkJoinChargesMaxElapsedSumCounters(t *testing.T) {
	parent := NewCtx()
	parent.Charge(100)

	a := parent.Fork()
	a.Charge(300)
	a.CountRPC()
	a.CountRowsScanned(10)

	b := parent.Fork()
	b.Charge(200)
	b.CountRPC()
	b.CountRowsReturned(4)
	b.CountBytesMoved(1000)

	parent.Join(a, b, nil)
	if got := parent.Elapsed(); got != 400 {
		t.Fatalf("elapsed = %v, want 400 (100 + max(300, 200))", got)
	}
	s := parent.Snapshot()
	if s.RPCs != 2 || s.RowsScanned != 10 || s.RowsReturned != 4 || s.BytesMoved != 1000 {
		t.Fatalf("counters = %+v, want summed child work", s)
	}
}

// JoinWidth models a bounded worker pool: n equal-cost children on width w
// lanes complete in ceil(n/w) rounds, not one.
func TestJoinWidthChargesRounds(t *testing.T) {
	cases := []struct {
		children, width int
		each            Micros
		want            Micros
	}{
		{children: 16, width: 8, each: 100, want: 200},  // 2 rounds
		{children: 17, width: 8, each: 100, want: 300},  // ceil(17/8) = 3
		{children: 8, width: 8, each: 100, want: 100},   // fits in one round
		{children: 3, width: 8, each: 100, want: 100},   // width >= n: plain Join
		{children: 5, width: 0, each: 100, want: 100},   // width 0: plain Join
		{children: 10, width: 1, each: 100, want: 1000}, // serial lane
	}
	for _, tc := range cases {
		parent := NewCtx()
		kids := make([]*Ctx, tc.children)
		for i := range kids {
			kids[i] = parent.Fork()
			kids[i].Charge(tc.each)
			kids[i].CountRPC()
		}
		parent.JoinWidth(tc.width, kids...)
		if got := parent.Elapsed(); got != tc.want {
			t.Fatalf("JoinWidth(%d) over %d×%v children: elapsed = %v, want %v",
				tc.width, tc.children, tc.each, got, tc.want)
		}
		if s := parent.Snapshot(); s.RPCs != int64(tc.children) {
			t.Fatalf("JoinWidth dropped counters: RPCs = %d, want %d", s.RPCs, tc.children)
		}
	}
}

// With unequal children, JoinWidth schedules each child on the lane that
// frees earliest (the pool's caller-runs behavior), so the makespan reflects
// greedy list scheduling, and never undercuts the plain-Join lower bound.
func TestJoinWidthUnequalChildren(t *testing.T) {
	parent := NewCtx()
	costs := []Micros{300, 100, 100, 100}
	kids := make([]*Ctx, len(costs))
	for i, d := range costs {
		kids[i] = parent.Fork()
		kids[i].Charge(d)
	}
	// Two lanes: lane0 gets 300, lane1 gets 100+100+100 = 300. Makespan 300.
	parent.JoinWidth(2, kids...)
	if got := parent.Elapsed(); got != 300 {
		t.Fatalf("elapsed = %v, want 300 (greedy two-lane schedule)", got)
	}
}

func TestJoinWidthNilSafe(t *testing.T) {
	var nilCtx *Ctx
	nilCtx.JoinWidth(2, NewCtx()) // must not panic
	parent := NewCtx()
	parent.JoinWidth(2, nil, nil, nil) // nil children skipped
	if parent.Elapsed() != 0 {
		t.Fatalf("elapsed = %v, want 0", parent.Elapsed())
	}
}

// Staleness counters flow through Snapshot, Join, and Reset like the others.
func TestStalenessCounters(t *testing.T) {
	ctx := NewCtx()
	ctx.CountStaleRead(5)
	ctx.CountStaleRead(0) // zero lag still counts the read
	ctx.CountWatermarkWait()

	child := ctx.Fork()
	child.CountStaleRead(3)
	child.CountWatermarkWait()
	ctx.Join(child)

	s := ctx.Snapshot()
	if s.StaleReads != 3 || s.StaleLag != 8 || s.WatermarkWaits != 2 {
		t.Fatalf("stats = %+v, want StaleReads=3 StaleLag=8 WatermarkWaits=2", s)
	}
	ctx.Reset()
	s = ctx.Snapshot()
	if s.StaleReads != 0 || s.StaleLag != 0 || s.WatermarkWaits != 0 {
		t.Fatalf("Reset left staleness counters: %+v", s)
	}

	var nilCtx *Ctx
	nilCtx.CountStaleRead(1) // must not panic
	nilCtx.CountWatermarkWait()
}

func TestForkJoinEmptyAndNil(t *testing.T) {
	parent := NewCtx()
	parent.Charge(50)
	parent.Join() // no branches: no time passes
	if parent.Elapsed() != 50 {
		t.Fatalf("elapsed = %v, want 50", parent.Elapsed())
	}
	var nilCtx *Ctx
	nilCtx.Join(parent.Fork()) // must not panic
}

func TestDefaultCostsSane(t *testing.T) {
	c := DefaultCosts()
	if c.RPC <= 0 || c.ScanNextRow <= 0 || c.ScannerBatch <= 0 {
		t.Fatal("default costs must be positive")
	}
	// MVCC overhead must land in the 800-900ms band the paper measures.
	total := c.MVCCBegin + c.MVCCCommit
	if total < FromMillis(800) || total > FromMillis(900) {
		t.Fatalf("MVCC begin+commit = %v, want within [800ms, 900ms]", total)
	}
	// Cold-client lock experiment anchor (Figure 11): fixed component is
	// a few hundred ms.
	if c.ConnectionSetup < FromMillis(200) || c.ConnectionSetup > FromMillis(400) {
		t.Fatalf("ConnectionSetup = %v, want a few hundred ms", c.ConnectionSetup)
	}
}
