package sim

// Costs is the latency calibration of the simulated testbed. Each constant
// is charged at the point where the corresponding real system pays it.
//
// The absolute values are calibrated against the anchors the paper reports
// directly (§IX):
//
//   - Figure 11: acquiring+releasing row locks from a cold client costs
//     342 ms for 10 locks, 571 ms for 100, 2182 ms for 1000 — i.e. a large
//     fixed client-connection/meta-lookup component plus ~1.9 ms per
//     checkAndPut cycle.
//   - §IX-D4: Phoenix-Tephra MVCC "adds an overhead of 800-900 ms to each
//     statement's execution time".
//   - Figure 10: at 50K customers a view scan is 6x (Q1) / 11.7x (Q2)
//     faster than the join algorithm.
//
// Everything else (RPC RTT, per-row and per-byte costs) uses plausible
// same-AZ EC2 magnitudes; only the *shape* of the results depends on them.
type Costs struct {
	// RPC is one client↔server round trip inside the cluster.
	RPC Micros
	// ConnectionSetup is the one-time cost a cold client pays before its
	// first RPC: connection establishment plus hbase:meta lookup. Charged
	// once per client unless the client is marked warm.
	ConnectionSetup Micros
	// MetaLookup is a region-location lookup on a meta cache miss.
	MetaLookup Micros

	// ScanOpen is the server-side cost of opening a region scanner
	// (store-file heap construction, seek to start key).
	ScanOpen Micros
	// ScanNextRow is the per-row server-side merge/filter cost.
	ScanNextRow Micros
	// GetSeek is the server-side cost of a point Get (block index + bloom
	// filter + block read).
	GetSeek Micros
	// PutApply is the server-side cost of applying one mutation to the
	// memstore.
	PutApply Micros
	// WALAppend is the cost of appending one edit to the write-ahead log,
	// including the HDFS replication pipeline hops.
	WALAppend Micros
	// CheckAndPut is the extra server-side cost of the atomic
	// read-compare-write used for lock acquisition (§IX-C), on top of the
	// RPC and PutApply costs.
	CheckAndPut Micros
	// MutateBatchOverhead is the per-batch server-side cost of a
	// multi-mutation RPC (request framing, region-server batch setup, one
	// WAL sync covering the whole batch), charged once per region batch on
	// top of the RPC round trip. Single-mutation batches skip it (and
	// MutatePerMutation): they charge exactly like an eager Put.
	MutateBatchOverhead Micros
	// MutatePerMutation is the marginal server-side cost of carrying one
	// extra mutation inside a batch RPC (unmarshalling + dispatch), charged
	// per mutation in addition to PutApply. It is what keeps very large
	// batches from being free.
	MutatePerMutation Micros
	// MutateMaxBatch caps the mutations sent in one batch RPC; larger
	// region groups split into multiple RPCs (HBase
	// hbase.client.write.buffer in rows rather than bytes).
	MutateMaxBatch int
	// MutateParallelism bounds the worker goroutines a multi-region batch
	// dispatches its region groups on. Batches touching at most
	// mutateInlineGroups regions apply inline on the caller — goroutine
	// dispatch for two or three memstore inserts costs more than it saves
	// (the PR-2 -race starvation note).
	MutateParallelism int
	// PerByte is the network transfer cost per payload byte shipped
	// between nodes.
	PerByte PerByteCost

	// ScannerBatch is the number of rows fetched per scanner RPC
	// (Phoenix/HBase scanner caching).
	ScannerBatch int
	// ScanParallelism is the number of region scans a scatter-gather
	// scanner keeps in flight (the Phoenix intra-query thread pool size).
	ScanParallelism int
	// ScanMergeChunk is the client-side cost of folding one batch from a
	// parallel region stream into the key-ordered result stream. Regions
	// hold disjoint key ranges, so the merge is per-chunk bookkeeping, not
	// per-row comparison work.
	ScanMergeChunk Micros

	// The join-algorithm costs below model the client-coordinated join
	// execution of the Phoenix-style SQL skin (§II-D). They are the
	// source of the view-scan vs join-algorithm gap in Figure 10: a view
	// scan streams rows; a join additionally deserializes, hashes,
	// probes and re-materializes every row in the single-threaded
	// client, and spills intermediate results between join stages.
	//
	// JoinBuildRow is charged per row inserted into a join hash table.
	JoinBuildRow Micros
	// JoinProbeRow is charged per probe-side row processed.
	JoinProbeRow Micros
	// IntermediateRow is charged per row of an intermediate join result
	// carried into a further join stage (materialize + re-read).
	IntermediateRow Micros
	// SpillPerByte is the cost of writing and re-reading intermediate
	// result bytes through the client's temp storage between stages.
	SpillPerByte PerByteCost
	// SortRow is the per-row, per-comparison-level cost of a client
	// sort: sorting n rows charges SortRow * n * ceil(log2 n).
	SortRow Micros
	// AggRow is the per-row cost of hash aggregation.
	AggRow Micros
	// INLThreshold is the outer-row count above which the planner stops
	// using index nested-loop joins (per-row Get RPCs) and falls back to
	// hash joins over scans.
	INLThreshold int

	// MVCCBegin and MVCCCommit are the Tephra-like transaction-server
	// round trips (snapshot construction and two-phase commit with
	// conflict detection). Together they reproduce the 800-900 ms
	// per-statement MVCC overhead the paper measures.
	MVCCBegin  Micros
	MVCCCommit Micros

	// OCCBegin is the begin-timestamp fetch of an optimistic transaction —
	// one oracle round trip, the reason OCC's read path carries none of
	// the Tephra server's snapshot-construction weight.
	OCCBegin Micros
	// OCCValidate is the fixed commit-time validation round trip (Larson
	// et al. backward validation against recently committed write sets).
	OCCValidate Micros
	// OCCValidatePerEntry is the marginal validation cost per read-set or
	// write-set entry compared at commit.
	OCCValidatePerEntry Micros
	// OCCMaxRetries bounds the validate-abort-retry loop of an optimistic
	// transaction before the conflict surfaces to the caller; retries back
	// off exponentially on the LockRetryBackoff schedule, like the lock
	// path's contended spin.
	OCCMaxRetries int

	// NewSQLBase is the per-transaction cost of the VoltDB-like engine:
	// client round trip, command-log group commit, K-safety replication.
	NewSQLBase Micros
	// NewSQLRow is the per-row in-memory execution cost of the VoltDB-like
	// engine.
	NewSQLRow Micros
	// NewSQLMultiPartition is the additional coordination cost of a
	// multi-partition transaction (all partitions block).
	NewSQLMultiPartition Micros

	// TxnLayerHop is the client→Synergy-transaction-layer-slave hop for
	// write statements (Figure 7: writes are routed through the
	// transaction layer; reads go directly to HBase).
	TxnLayerHop Micros
	// LockRetryBackoff is the simulated wait before the first retry of a
	// contended checkAndPut lock acquisition; subsequent retries back off
	// exponentially up to LockRetryBackoffMax.
	LockRetryBackoff Micros
	// LockRetryBackoffMax caps the exponential lock-retry backoff.
	LockRetryBackoffMax Micros
	// DirtyRestartPenalty is charged when a scan observes a dirty-marked
	// row and restarts (§VIII-C).
	DirtyRestartPenalty Micros

	// AsyncQueueHop is charged to the writer when its committed view deltas
	// are handed to the changefeed — the enqueue hop onto the maintenance
	// lane, the only maintenance cost left on the client's critical path in
	// async mode.
	AsyncQueueHop Micros
	// AsyncApplyBatch is the per-batch overhead an applier worker pays to
	// drain one batch of deltas from a view's queue (dequeue, batch setup),
	// charged to the background apply context, not the writer.
	AsyncApplyBatch Micros
	// WatermarkWait is the fixed cost of one watermark-freshness check a
	// ReadWatermark reader pays when it finds a view behind its snapshot and
	// must wait for the applier (the wait itself additionally charges the
	// applier work the reader blocked on).
	WatermarkWait Micros

	// RegionMove is the cost of relocating one region between region
	// servers — closing it on the source, opening it on the destination and
	// updating hbase:meta — charged to the balancer's context, not to client
	// requests (in-flight operations drain against the old assignment).
	RegionMove Micros

	// WireConnect is the one-time cost of admitting one client connection
	// at the SQL wire listener: TCP accept, the handshake exchange and
	// session setup. Charged to the session's context at connect.
	WireConnect Micros
	// WirePacket is the fixed framing cost of one wire-protocol command
	// exchange (request decode + response encode + two packet headers),
	// charged once per client command.
	WirePacket Micros
	// WirePerByte is the transfer cost per response payload byte shipped
	// from the server to the client (result-set encoding dominates it).
	WirePerByte PerByteCost
}

// LockBackoff returns the simulated wait before retry number attempt
// (0-based) of a contended spin: exponential from LockRetryBackoff, capped
// at LockRetryBackoffMax (a zero cap keeps the historical fixed backoff).
// The lock manager's contended acquire and the OCC validation-conflict
// retry share this schedule.
func (c *Costs) LockBackoff(attempt int) Micros {
	d := c.LockRetryBackoff
	max := c.LockRetryBackoffMax
	if max <= 0 {
		return d
	}
	for ; attempt > 0 && d < max; attempt-- {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// PerByteCost is a cost expressed in simulated nanoseconds per byte, used
// where whole microseconds are too coarse (2 ≈ 500 MB/s, 40 ≈ 25 MB/s).
type PerByteCost int64

// Mul returns the cost of n bytes.
func (m PerByteCost) Mul(n int) Micros { return Micros(int64(n) * int64(m) / 1000) }

// DefaultCosts returns the calibration used by all experiments.
func DefaultCosts() *Costs {
	return &Costs{
		RPC:             FromMillis(0.35),
		ConnectionSetup: FromMillis(320),
		MetaLookup:      FromMillis(1.2),

		ScanOpen:    FromMillis(0.40),
		ScanNextRow: Micros(2),
		GetSeek:     FromMillis(0.25),
		PutApply:    Micros(15),
		WALAppend:   FromMillis(0.25),
		CheckAndPut: FromMillis(0.35),
		PerByte:     2, // 0.002 µs/byte ≈ 500 MB/s

		MutateBatchOverhead: FromMillis(0.10),
		MutatePerMutation:   Micros(3),
		MutateMaxBatch:      500,
		MutateParallelism:   8,

		ScannerBatch:    1000,
		ScanParallelism: 8,
		ScanMergeChunk:  Micros(20),

		JoinBuildRow:    Micros(9),
		JoinProbeRow:    Micros(9),
		IntermediateRow: Micros(7),
		SpillPerByte:    40, // 0.04 µs/byte ≈ 25 MB/s effective spill
		SortRow:         Micros(1),
		AggRow:          Micros(2),
		INLThreshold:    2000,

		MVCCBegin:  FromMillis(410),
		MVCCCommit: FromMillis(440),

		OCCBegin:            FromMillis(0.35),
		OCCValidate:         FromMillis(0.5),
		OCCValidatePerEntry: Micros(2),
		OCCMaxRetries:       12,

		NewSQLBase:           FromMillis(14),
		NewSQLRow:            Micros(1),
		NewSQLMultiPartition: FromMillis(9),

		TxnLayerHop:         FromMillis(0.5),
		LockRetryBackoff:    FromMillis(5),
		LockRetryBackoffMax: FromMillis(80),
		DirtyRestartPenalty: FromMillis(1),

		AsyncQueueHop:   FromMillis(0.05),
		AsyncApplyBatch: FromMillis(0.15),
		WatermarkWait:   FromMillis(0.25),

		RegionMove: FromMillis(25),

		WireConnect: FromMillis(0.5),
		WirePacket:  Micros(30),
		WirePerByte: 2, // 0.002 µs/byte ≈ 500 MB/s
	}
}
