// Command synergy-shell is an interactive SQL shell against a Synergy
// deployment of the Company example schema (Figure 2), pre-loaded with a
// small dataset. It shows the design (rooted trees, selected views,
// rewrites) and executes ad-hoc statements, printing the simulated response
// time of each.
//
// Usage:
//
//	synergy-shell
//	> SELECT * FROM Employee as e, Address as a WHERE a.AID = e.EHome_AID and e.EID = 3
//	> INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (3, 2, 12)
//	> \design
//	> \quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"

	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
)

func main() {
	sys, err := deploy()
	if err != nil {
		fmt.Fprintln(os.Stderr, "synergy-shell:", err)
		os.Exit(1)
	}
	fmt.Println("Synergy shell — Company schema (Figure 2). \\design shows the design, \\quit exits.")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\design`:
			fmt.Println(sys.Design.Summary())
		default:
			execute(sys, line)
		}
		fmt.Print("> ")
	}
}

func execute(sys *synergy.System, line string) {
	stmt, err := sqlparser.Parse(line)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx := sim.NewCtx()
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		rs, err := sys.Query(ctx, s, nil)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rs.Columns, rs.Rows)
		fmt.Printf("%d row(s) in %v (simulated)\n", len(rs.Rows), ctx.Elapsed())
	default:
		if err := sys.Exec(ctx, stmt, nil); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("ok in %v (simulated)\n", ctx.Elapsed())
	}
}

func printRows(cols []string, rows []schema.Row) {
	if len(rows) == 0 {
		return
	}
	if len(cols) == 0 {
		for c := range rows[0] {
			cols = append(cols, c)
		}
		sort.Strings(cols)
	}
	fmt.Println(strings.Join(cols, "\t"))
	max := len(rows)
	if max > 25 {
		max = 25
	}
	for _, r := range rows[:max] {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = fmt.Sprintf("%v", r[c])
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	if len(rows) > max {
		fmt.Printf("... (%d more)\n", len(rows)-max)
	}
}

func deploy() (*synergy.System, error) {
	workload := append(schema.CompanyWorkload(), "UPDATE Employee SET EName = ? WHERE EID = ?")
	sys, err := synergy.New(schema.Company(), schema.CompanyRoots(), workload, synergy.Config{})
	if err != nil {
		return nil, err
	}
	var addresses, departments, employees, projects, worksOn []schema.Row
	for a := int64(1); a <= 8; a++ {
		addresses = append(addresses, schema.Row{"AID": a, "Street": fmt.Sprintf("%d Main St", a), "City": "Nashville", "Zip": fmt.Sprintf("%05d", 37000+a)})
	}
	for d := int64(1); d <= 3; d++ {
		departments = append(departments, schema.Row{"DNo": d, "DName": fmt.Sprintf("dept-%d", d)})
	}
	for e := int64(1); e <= 12; e++ {
		employees = append(employees, schema.Row{
			"EID": e, "EName": fmt.Sprintf("employee-%d", e),
			"EHome_AID": (e % 8) + 1, "EOffice_AID": ((e + 3) % 8) + 1, "E_DNo": (e % 3) + 1,
		})
	}
	for p := int64(1); p <= 4; p++ {
		projects = append(projects, schema.Row{"PNo": p, "PName": fmt.Sprintf("project-%d", p), "P_DNo": (p % 3) + 1})
	}
	for e := int64(1); e <= 12; e++ {
		for p := int64(1); p <= 2; p++ {
			worksOn = append(worksOn, schema.Row{"WO_EID": e, "WO_PNo": p, "Hours": e*5 + p})
		}
	}
	for table, rows := range map[string][]schema.Row{
		"Address": addresses, "Department": departments, "Employee": employees,
		"Project": projects, "Works_On": worksOn,
	} {
		if err := sys.LoadBase(table, rows); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildViews(); err != nil {
		return nil, err
	}
	return sys, nil
}
