// Command tpcwgen generates the TPC-W database used by the evaluation
// (§IX-D1) and prints its cardinalities and estimated sizes, or dumps a
// table as TSV.
//
// Usage:
//
//	tpcwgen -cust 1000                 # summary
//	tpcwgen -cust 100 -dump Customer   # TSV rows to stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"synergy/internal/tpcw"
)

func main() {
	var (
		cust = flag.Int("cust", 1000, "customer count (paper: 1,000,000)")
		seed = flag.Int64("seed", 1, "deterministic seed")
		dump = flag.String("dump", "", "table to dump as TSV (empty = summary)")
	)
	flag.Parse()

	data := tpcw.Generate(*cust, *seed)
	if *dump == "" {
		summary(data)
		return
	}
	rows, ok := data.Tables[*dump]
	if !ok {
		fmt.Fprintf(os.Stderr, "tpcwgen: unknown table %q\n", *dump)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if len(rows) == 0 {
		return
	}
	cols := make([]string, 0, len(rows[0]))
	for c := range rows[0] {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		for i, c := range cols {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprintf(w, "%v", r[c])
		}
		fmt.Fprintln(w)
	}
}

func summary(data *tpcw.Data) {
	fmt.Printf("TPC-W database (NUM_CUST=%d, NUM_ITEMS=%d)\n\n", data.Card.Customers, data.Card.Items)
	stats := data.Stats()
	names := make([]string, 0, len(data.Tables))
	for n := range data.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-22s %10s %14s %12s\n", "table", "rows", "avg row (B)", "raw (MB)")
	var total int64
	for _, n := range names {
		rows := stats.Rows[n]
		avg := stats.AvgRowBytes[n]
		total += rows * avg
		fmt.Printf("%-22s %10d %14d %12.2f\n", n, rows, avg, float64(rows*avg)/1e6)
	}
	fmt.Printf("%-22s %10s %14s %12.2f\n", "TOTAL", "", "", float64(total)/1e6)
}
