// Command tpcwgen generates the TPC-W database used by the evaluation
// (§IX-D1) and prints its cardinalities and estimated sizes, or dumps a
// table as TSV. It can also emit a Zipf-skewed key-access trace over a
// keyspace — the request distribution the hot-region experiment drives the
// store with (rank 0 hottest, ranks in key order).
//
// Usage:
//
//	tpcwgen -cust 1000                     # summary
//	tpcwgen -cust 100 -dump Customer       # TSV rows to stdout
//	tpcwgen -zipf 0.99 -keys 50000 -draws 100000   # skew summary
//	tpcwgen -zipf 0.99 -keys 50000 -draws 1000 -trace   # one key per line
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"synergy/internal/sim"
	"synergy/internal/tpcw"
)

func main() {
	var (
		cust  = flag.Int("cust", 1000, "customer count (paper: 1,000,000)")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		dump  = flag.String("dump", "", "table to dump as TSV (empty = summary)")
		zipf  = flag.Float64("zipf", -1, "emit a Zipf key-access summary with this exponent (0 = uniform)")
		keys  = flag.Int("keys", 50_000, "keyspace size for -zipf")
		draws = flag.Int("draws", 100_000, "samples for -zipf")
		trace = flag.Bool("trace", false, "with -zipf: print one drawn key per line instead of the summary")
	)
	flag.Parse()

	if *zipf >= 0 {
		zipfReport(*zipf, *keys, *draws, *seed, *trace)
		return
	}

	data := tpcw.Generate(*cust, *seed)
	if *dump == "" {
		summary(data)
		return
	}
	rows, ok := data.Tables[*dump]
	if !ok {
		fmt.Fprintf(os.Stderr, "tpcwgen: unknown table %q\n", *dump)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if len(rows) == 0 {
		return
	}
	cols := make([]string, 0, len(rows[0]))
	for c := range rows[0] {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		for i, c := range cols {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprintf(w, "%v", r[c])
		}
		fmt.Fprintln(w)
	}
}

// zipfReport draws from the skew generator and prints either the raw trace
// (keys in the hot-region experiment's key format) or a head-share summary
// comparing the analytic distribution with the empirical draw.
func zipfReport(s float64, keys, draws int, seed int64, trace bool) {
	z := sim.NewZipf(sim.NewRNG(seed).Derive("tpcwgen/zipf"), keys, s)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if trace {
		for i := 0; i < draws; i++ {
			fmt.Fprintf(w, "k%08d\n", z.Next())
		}
		return
	}
	counts := make([]int, keys)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	fmt.Fprintf(w, "Zipf(s=%g) over %d keys, %d draws (seed %d)\n\n", s, keys, draws, seed)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "head (ranks)", "mass", "drawn")
	for _, head := range []int{1, 10, 100, keys / 100, keys / 10, keys} {
		if head <= 0 || head > keys {
			continue
		}
		drawn := 0
		for k := 0; k < head; k++ {
			drawn += counts[k]
		}
		fmt.Fprintf(w, "%-12d %11.2f%% %11.2f%%\n",
			head, z.Share(head)*100, 100*float64(drawn)/float64(draws))
	}
}

func summary(data *tpcw.Data) {
	fmt.Printf("TPC-W database (NUM_CUST=%d, NUM_ITEMS=%d)\n\n", data.Card.Customers, data.Card.Items)
	stats := data.Stats()
	names := make([]string, 0, len(data.Tables))
	for n := range data.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-22s %10s %14s %12s\n", "table", "rows", "avg row (B)", "raw (MB)")
	var total int64
	for _, n := range names {
		rows := stats.Rows[n]
		avg := stats.AvgRowBytes[n]
		total += rows * avg
		fmt.Printf("%-22s %10d %14d %12.2f\n", n, rows, avg, float64(rows*avg)/1e6)
	}
	fmt.Printf("%-22s %10s %14s %12.2f\n", "TOTAL", "", "", float64(total)/1e6)
}
