// benchjson converts `go test -bench` output on stdin into a machine-
// readable JSON report on stdout, so CI can archive the perf trajectory
// (simulated latency and allocations per benchmark) as a build artifact and
// diff it PR-over-PR.
//
//	go test -bench . -benchtime 1x -run '^$' ./internal/... | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	N    int64  `json:"n"`
	// Metrics maps unit -> value: "ns/op", "sim-ms/op", "B/op", "allocs/op"
	// and any custom b.ReportMetric unit.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a "Benchmark..." line that is not a result row
		}
		b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
