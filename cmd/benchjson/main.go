// benchjson converts `go test -bench` output on stdin into a machine-
// readable JSON report on stdout, so CI can archive the perf trajectory
// (simulated latency and allocations per benchmark) as a build artifact and
// diff it PR-over-PR:
//
//	go test -bench . -benchtime 1x -run '^$' ./internal/... | go run ./cmd/benchjson > BENCH.json
//
// It also carries the CI regression guard: compare mode diffs two reports'
// sim-ms/op — the deterministic simulated latency, stable across machines —
// and exits nonzero when any benchmark regressed past the tolerance:
//
//	go run ./cmd/benchjson -compare BENCH_baseline.json BENCH.json -tolerance 1.5x
//
// allocs/op and B/op are guarded alongside it (default tolerance 1.25x,
// override with -alloc-tolerance), so allocation wins — both count and
// bytes — stay pinned the same way latency wins do. Both are deterministic
// for a fixed Go toolchain; small benchmarks (under allocFloor allocations
// or bytesFloor bytes) are exempt from the ratio checks because one
// incidental allocation would trip them.
//
// Benchmark names are matched with their -<GOMAXPROCS> suffix stripped, so a
// baseline recorded on an 8-core machine guards a 4-core CI runner.
// Benchmarks present only in the new report pass (new coverage); benchmarks
// that disappeared are warned about on stderr but do not fail the build —
// update the committed baseline when renaming or removing one.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	N    int64  `json:"n"`
	// Metrics maps unit -> value: "ns/op", "sim-ms/op", "B/op", "allocs/op"
	// and any custom b.ReportMetric unit.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	// Hand-rolled argument scan so the documented usage works regardless of
	// flag order (`-compare old new -tolerance 1.5x`).
	var compare []string
	tolerance := 1.5
	allocTolerance := 1.25
	args := os.Args[1:]
	parseRatio := func(flag, val string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(val, "x"), 64)
		if err != nil || v < 1 {
			fatal(fmt.Sprintf("bad %s %q: want a ratio >= 1 like 1.5x", flag, val))
		}
		return v
	}
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-compare", "--compare":
			if len(args) < i+3 {
				fatal("usage: benchjson -compare old.json new.json [-tolerance 1.5x] [-alloc-tolerance 1.25x]")
			}
			compare = []string{args[i+1], args[i+2]}
			i += 2
		case "-tolerance", "--tolerance":
			if len(args) < i+2 {
				fatal("-tolerance needs a value (e.g. 1.5x)")
			}
			tolerance = parseRatio("tolerance", args[i+1])
			i++
		case "-alloc-tolerance", "--alloc-tolerance":
			if len(args) < i+2 {
				fatal("-alloc-tolerance needs a value (e.g. 1.25x)")
			}
			allocTolerance = parseRatio("alloc-tolerance", args[i+1])
			i++
		case "-h", "--help":
			fmt.Fprintln(os.Stderr, "usage: benchjson < bench.txt > BENCH.json")
			fmt.Fprintln(os.Stderr, "       benchjson -compare old.json new.json [-tolerance 1.5x] [-alloc-tolerance 1.25x]")
			return
		default:
			fatal(fmt.Sprintf("unknown argument %q", args[i]))
		}
	}
	if compare != nil {
		os.Exit(runCompare(compare[0], compare[1], tolerance, allocTolerance))
	}
	runConvert()
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
	os.Exit(2)
}

// runConvert is the original stdin -> JSON mode.
func runConvert() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a "Benchmark..." line that is not a result row
		}
		b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// simMetric is the primary compared unit: simulated latency is
// deterministic for a given tree, so any movement is a real code-path
// change, not machine noise.
const simMetric = "sim-ms/op"

// allocMetric is the secondary guard: allocation counts are reproducible
// for a fixed toolchain, so a past-tolerance climb is a real hot-path
// representation change.
const allocMetric = "allocs/op"

// regressFloor ignores regressions below this absolute sim-ms delta:
// sub-10µs benchmarks can legally wobble by a charge quantum.
const regressFloor = 0.01

// allocFloor exempts benchmarks below this allocation count from the ratio
// check — one incidental allocation on a 20-alloc benchmark is not a
// hot-path regression.
const allocFloor = 500

// bytesMetric guards allocated bytes with the same tolerance as allocs/op:
// the arena scan path's wins are mostly byte wins (few large buffers
// replacing many small ones), which a count-only guard would not hold.
const bytesMetric = "B/op"

// bytesFloor exempts benchmarks allocating less than this many bytes per
// op, the B/op analogue of allocFloor.
const bytesFloor = 16 << 10

func runCompare(oldPath, newPath string, tolerance, allocTolerance float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newByName := map[string]Benchmark{}
	for _, b := range newRep.Benchmarks {
		newByName[normalizeName(b.Name)] = b
	}

	compared, regressions := 0, 0
	for _, ob := range oldRep.Benchmarks {
		oldSim, hasSim := ob.Metrics[simMetric]
		oldAllocs, hasAllocs := ob.Metrics[allocMetric]
		if !hasSim && !hasAllocs {
			continue
		}
		name := normalizeName(ob.Name)
		nb, ok := newByName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: warning: %s missing from %s (baseline stale?)\n", name, newPath)
			continue
		}
		counted := false
		if hasSim {
			newSim, ok := nb.Metrics[simMetric]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s lost its %s metric\n", name, simMetric)
			} else {
				compared++
				counted = true
				if oldSim > 0 && newSim > oldSim*tolerance && newSim-oldSim > regressFloor {
					regressions++
					fmt.Printf("REGRESSION %-60s %10.3f -> %10.3f %s (%.2fx > %.2fx tolerance)\n",
						name, oldSim, newSim, simMetric, newSim/oldSim, tolerance)
				}
			}
		}
		if hasAllocs && oldAllocs >= allocFloor {
			newAllocs, ok := nb.Metrics[allocMetric]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s lost its %s metric\n", name, allocMetric)
				continue
			}
			if !counted {
				compared++
				counted = true
			}
			if newAllocs > oldAllocs*allocTolerance {
				regressions++
				fmt.Printf("REGRESSION %-60s %10.0f -> %10.0f %s (%.2fx > %.2fx tolerance)\n",
					name, oldAllocs, newAllocs, allocMetric, newAllocs/oldAllocs, allocTolerance)
			}
		}
		if oldBytes, hasBytes := ob.Metrics[bytesMetric]; hasBytes && oldBytes >= bytesFloor {
			newBytes, ok := nb.Metrics[bytesMetric]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s lost its %s metric\n", name, bytesMetric)
				continue
			}
			if !counted {
				compared++
			}
			if newBytes > oldBytes*allocTolerance {
				regressions++
				fmt.Printf("REGRESSION %-60s %10.0f -> %10.0f %s (%.2fx > %.2fx tolerance)\n",
					name, oldBytes, newBytes, bytesMetric, newBytes/oldBytes, allocTolerance)
			}
		}
	}
	fmt.Printf("benchjson: compared %d benchmarks on %s + %s, %d regression(s) past %.2fx/%.2fx\n",
		compared, simMetric, allocMetric, regressions, tolerance, allocTolerance)
	if regressions > 0 {
		return 1
	}
	return 0
}

// normalizeName strips the -<GOMAXPROCS> suffix go test appends, so reports
// from machines with different core counts compare by benchmark identity.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
