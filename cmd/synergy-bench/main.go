// Command synergy-bench regenerates the paper's evaluation (§IX): every
// figure and table, printed as text. By default it runs everything at a
// laptop-friendly scale; -cust and -scales raise the database sizes toward
// the paper's.
//
// Usage:
//
//	synergy-bench -experiment all -cust 1000 -reps 10
//	synergy-bench -experiment fig10 -scales 500,5000,50000
//	synergy-bench -experiment table3 -cust 2000
//	synergy-bench -experiment contention -hotrows 1,4,16 -workers 8 -rounds 50 -ops 10
//	synergy-bench -experiment contention -herd
//	synergy-bench -experiment maintenance -views 1,4,16
//	synergy-bench -experiment skew -skew 0,0.99,1.2 -skewwaves 40
//	synergy-bench -experiment server -conns 8 -txns 16
//	synergy-bench -experiment largescan -rows 10000,100000,1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"synergy/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig10|fig11|fig12|fig13|fig14|table1|table2|table3|design|contention|maintenance|skew|server|largescan|all")
		cust       = flag.Int("cust", 1000, "TPC-W customer count (paper: 1,000,000)")
		reps       = flag.Int("reps", 10, "repetitions per measurement (paper: 10)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		scales     = flag.String("scales", "500,5000,20000", "Figure 10 customer scales (paper: 500,5000,50000)")
		locks      = flag.String("locks", "10,100,1000", "Figure 11 lock counts")
		hotRows    = flag.String("hotrows", "1,4,16", "contention sweep hot-row counts")
		workers    = flag.Int("workers", 4, "contention sweep concurrent workers")
		rounds     = flag.Int("rounds", 25, "contention sweep waves per cell")
		ops        = flag.Int("ops", 1, "contention sweep statements per transaction")
		herd       = flag.Bool("herd", false, "contention sweep: conflict losers retry as an overlapping wave instead of solo")
		views      = flag.String("views", "1,4,16", "maintenance sweep view counts")
		skews      = flag.String("skew", "0,0.99,1.2", "skew sweep Zipf exponents (0 = uniform)")
		skewKeys   = flag.Int("skewkeys", 50000, "skew sweep keyspace size")
		skewOps    = flag.Int("skewops", 64, "skew sweep concurrent ops per wave")
		skewWaves  = flag.Int("skewwaves", 40, "skew sweep measured waves")
		conns      = flag.Int("conns", 8, "server experiment concurrent client connections per mode")
		txns       = flag.Int("txns", 16, "server experiment transactions per connection")
		scanRows   = flag.String("rows", "10000,100000", "large-scan sweep row counts (acceptance scale: 10000,100000,1000000)")
	)
	flag.Parse()

	if err := run(*experiment, *cust, *reps, *seed, parseInts(*scales), parseInts(*locks),
		parseInts(*hotRows), *workers, *rounds, *ops, *herd, parseInts(*views),
		parseFloats(*skews), bench.SkewOpts{Keys: *skewKeys, WaveOps: *skewOps, Waves: *skewWaves},
		bench.ServerOpts{Conns: *conns, Txns: *txns},
		bench.LargeScanOpts{Rows: parseInts(*scanRows), Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "synergy-bench:", err)
		os.Exit(1)
	}
}

func parseFloats(csv string) []float64 {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synergy-bench: bad number %q\n", part)
			os.Exit(2)
		}
		out = append(out, f)
	}
	return out
}

func parseInts(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synergy-bench: bad number %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func run(experiment string, cust, reps int, seed int64, scales, locks, hotRows []int, workers, rounds, ops int, herd bool, views []int, skews []float64, skewOpts bench.SkewOpts, serverOpts bench.ServerOpts, largeScanOpts bench.LargeScanOpts) error {
	needSystems := map[string]bool{"fig12": true, "fig14": true, "table2": true, "table3": true, "all": true}
	var set *bench.SystemSet
	if needSystems[experiment] {
		fmt.Printf("building the five evaluated systems over TPC-W with %d customers (seed %d)...\n\n", cust, seed)
		var err error
		set, err = bench.BuildSystems(cust, seed, nil)
		if err != nil {
			return err
		}
	}

	want := func(name string) bool { return experiment == name || experiment == "all" }

	if want("design") {
		sys := set
		if sys == nil {
			var err error
			sys, err = bench.BuildSystems(cust, seed, nil)
			if err != nil {
				return err
			}
			set = sys
		}
		fmt.Println("Synergy design for the TPC-W workload (§V, §VI):")
		fmt.Println(set.Synergy.Design().Summary())
	}

	if want("fig10") {
		rows, err := bench.RunFigure10(scales, reps, seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFigure10(rows))
	}
	if want("fig11") {
		rows, err := bench.RunFigure11(locks, reps, seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFigure11(rows))
	}
	if want("fig12") {
		g, err := bench.RunFigure12(set, reps, seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderGrid("Figure 12: TPC-W join queries", g))
		fmt.Println(bench.RenderComparisons(g))
	}
	if want("fig13") {
		fmt.Println(bench.Figure13Matrix())
	}
	if want("contention") {
		res, err := bench.RunContentionOpts(hotRows, workers, rounds, ops, seed, nil,
			bench.ContentionOpts{Herd: herd})
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderContention(res))
	}
	if want("maintenance") {
		res, err := bench.RunMaintenance(views, reps, seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderMaintenance(res))
	}
	if want("server") {
		res, err := bench.RunServer(serverOpts, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderServer(res))
	}
	if want("largescan") {
		res, err := bench.RunLargeScan(largeScanOpts, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderLargeScan(res))
	}
	if want("skew") {
		res, err := bench.RunSkew(skews, skewOpts, seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderSkew(res))
	}
	if want("fig14") {
		g, err := bench.RunFigure14(set, reps, seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderGrid("Figure 14: TPC-W write statements", g))
		fmt.Println(bench.RenderComparisons(g))
	}
	if want("table1") {
		fmt.Println(bench.TableIQualitative())
	}
	if want("table2") {
		rows, err := bench.RunTableII(set, reps, seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTableII(rows))
	}
	if want("table3") {
		rows := bench.RunTableIII(set)
		fmt.Println(bench.RenderTableIII(rows, set.Data.Card.Customers))
	}
	return nil
}
