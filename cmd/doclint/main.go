// Command doclint enforces the package-documentation rule: every Go package
// under the given roots must carry a package comment — a doc comment on the
// package clause of at least one file, in the standard "Package <name> ..."
// form for libraries (package main may open however reads best). The
// operator documentation (README, docs/PROTOCOL.md) leans on godoc being
// present for every subsystem, so a missing package comment is a
// build-breaking finding, run in CI next to gofmt and go vet:
//
//	go run ./cmd/doclint ./internal ./cmd
//
// Test files (_test.go) don't count: the comment must live on the package
// itself.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./internal", "./cmd"}
	}
	var findings []string
	for _, root := range roots {
		f, err := lintTree(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		findings = append(findings, f...)
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d package(s) without a package comment\n", len(findings))
		os.Exit(1)
	}
}

// lintTree walks root and reports every package directory whose non-test
// files carry no package doc comment.
func lintTree(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
			return filepath.SkipDir
		}
		ok, pkg, has, err := lintDir(path)
		if err != nil {
			return err
		}
		if has && !ok {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", path, pkg))
		}
		return nil
	})
	return findings, err
}

// lintDir parses the directory's non-test Go files; it reports whether a
// package doc comment was found, the package name, and whether the
// directory holds Go files at all.
func lintDir(dir string) (ok bool, pkg string, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, "", false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.ImportsOnly)
		if err != nil {
			return false, "", true, err
		}
		hasGo = true
		pkg = f.Name.Name
		if f.Doc == nil {
			continue
		}
		doc := strings.TrimSpace(f.Doc.Text())
		// Libraries must use the standard "Package <name> ..." form;
		// commands (package main) may open however reads best.
		if pkg == "main" && doc != "" {
			ok = true
		} else if strings.HasPrefix(doc, "Package "+pkg) {
			ok = true
		}
	}
	return ok, pkg, hasGo, nil
}
