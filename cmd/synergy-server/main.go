// Command synergy-server serves a Synergy deployment of the Company example
// schema (Figure 2) over the MySQL client/server protocol. It deploys one
// system per concurrency mode — hierarchical, mvcc, occ — as server
// backends; a client selects one with the connect database name or
// `SET synergy_mode`, and its freshness contract against async-maintained
// views with `SET synergy_reads`. See docs/PROTOCOL.md for the implemented
// command subset.
//
// Usage:
//
//	synergy-server -listen 127.0.0.1:4306 -slots 8 -queue 16
//	mysql-ish client: user@tcp(127.0.0.1:4306)/occ
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"synergy/internal/schema"
	"synergy/internal/server"
	"synergy/internal/synergy"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:4306", "TCP listen address")
		slots    = flag.Int("slots", 8, "statement execution slots")
		queue    = flag.Int("queue", 16, "admission wait-queue bound")
		maxConns = flag.Int("maxconns", 64, "connection cap")
	)
	flag.Parse()
	if err := run(*listen, *slots, *queue, *maxConns); err != nil {
		fmt.Fprintln(os.Stderr, "synergy-server:", err)
		os.Exit(1)
	}
}

func run(listen string, slots, queue, maxConns int) error {
	backends := make([]server.Backend, 0, 3)
	for _, m := range []struct {
		name string
		mode synergy.ConcurrencyMode
	}{
		{"hierarchical", synergy.Hierarchical},
		{"mvcc", synergy.MVCC},
		{"occ", synergy.OCC},
	} {
		sys, err := deploy(m.mode)
		if err != nil {
			return fmt.Errorf("deploying %s: %w", m.name, err)
		}
		backends = append(backends, server.SystemBackend(m.name, sys))
		fmt.Printf("deployed %s backend (Company schema, %d views)\n", m.name, len(sys.Design.Views))
	}
	srv, err := server.New(server.Config{
		Backends: backends,
		Default:  "hierarchical",
		MaxConns: maxConns,
		Slots:    slots,
		Queue:    queue,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("serving MySQL protocol on %s (backends: hierarchical, mvcc, occ; %d slots, queue %d)\n",
		l.Addr(), slots, queue)
	return srv.Serve(l)
}

// deploy stands up one Company-schema system pre-loaded with the shell's
// small deterministic dataset.
func deploy(mode synergy.ConcurrencyMode) (*synergy.System, error) {
	workload := append(schema.CompanyWorkload(), "UPDATE Employee SET EName = ? WHERE EID = ?")
	cfg := synergy.Config{Concurrency: mode}
	if mode != synergy.Hierarchical {
		cfg.MaxVersions = 16
	}
	sys, err := synergy.New(schema.Company(), schema.CompanyRoots(), workload, cfg)
	if err != nil {
		return nil, err
	}
	var addresses, departments, employees, projects, worksOn []schema.Row
	for a := int64(1); a <= 8; a++ {
		addresses = append(addresses, schema.Row{"AID": a, "Street": fmt.Sprintf("%d Main St", a), "City": "Nashville", "Zip": fmt.Sprintf("%05d", 37000+a)})
	}
	for d := int64(1); d <= 3; d++ {
		departments = append(departments, schema.Row{"DNo": d, "DName": fmt.Sprintf("dept-%d", d)})
	}
	for e := int64(1); e <= 12; e++ {
		employees = append(employees, schema.Row{
			"EID": e, "EName": fmt.Sprintf("employee-%d", e),
			"EHome_AID": (e % 8) + 1, "EOffice_AID": ((e + 3) % 8) + 1, "E_DNo": (e % 3) + 1,
		})
	}
	for p := int64(1); p <= 4; p++ {
		projects = append(projects, schema.Row{"PNo": p, "PName": fmt.Sprintf("project-%d", p), "P_DNo": (p % 3) + 1})
	}
	for e := int64(1); e <= 12; e++ {
		for p := int64(1); p <= 2; p++ {
			worksOn = append(worksOn, schema.Row{"WO_EID": e, "WO_PNo": p, "Hours": e*5 + p})
		}
	}
	for table, rows := range map[string][]schema.Row{
		"Address": addresses, "Department": departments, "Employee": employees,
		"Project": projects, "Works_On": worksOn,
	} {
		if err := sys.LoadBase(table, rows); err != nil {
			return nil, err
		}
	}
	if err := sys.BuildViews(); err != nil {
		return nil, err
	}
	return sys, nil
}
