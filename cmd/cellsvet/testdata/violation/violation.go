// Package violation is a cellsvet fixture: every function below breaks
// the Cells immutability rule in one of the flagged ways. It lives under
// testdata so neither the go tool nor the repo-wide cellsvet sweep picks
// it up; cellsvet's own test points the checker here and asserts it fails.
package violation

import "synergy/internal/hbase"

func appendToCells(r hbase.RowResult) hbase.Cells {
	return append(r.Cells, hbase.Pair{Qualifier: "q"})
}

func writeThroughElement(c hbase.Cells) {
	c[0].Qualifier = "clobbered"
}

func writeThroughValueBytes(c hbase.Cells) {
	c[0].Value[0] = 'x'
}

func capacitySurgery(c hbase.Cells) hbase.Cells {
	return c[0:1:2]
}

// ownedMutation is exempt: the marker below is what cellsvet honors.
//
//cellsvet:owner
func ownedMutation(c hbase.Cells) hbase.Cells {
	c[0].Qualifier = "fine"
	return append(c, hbase.Pair{})
}
