// Command cellsvet enforces the hbase.Cells immutability rule across the
// repository: Cells returned by the read path are windows into shared
// arenas and pooled buffers, so callers must never append to them, write
// through their elements, or re-slice them beyond their length. The rule
// is documented on the Cells type; this tool promotes it from a comment to
// a build-breaking check (run in CI next to gofmt and go vet):
//
//	go run ./cmd/cellsvet ./...
//
// Flagged operations, on any value whose static type is hbase.Cells:
//
//   - append(cells, ...) — growing a window can write into the arena
//     cells beyond it (or, post-clip, silently alias a new array while
//     the caller believes it extended the original);
//   - writes through an index expression (cells[i] = p, cells[i].TS = 0,
//     cells[i].Value[0] = b, &cells[i] escapes excluded — any assignment
//     or ++/-- whose target passes through cells[i]);
//   - full slice expressions (cells[a:b:c]) — capacity surgery is how
//     owners clip windows, and how a caller would un-clip one.
//
// The handful of legitimate owners (the rowdata arena filler, the clone
// helpers, the overlay merge, codec choke points) carry a
// "//cellsvet:owner" line in the doc comment of the owning function;
// everything inside that function (closures included) is exempt.
//
// The tool is self-contained on the standard library (go/parser +
// go/types): repo-internal imports resolve through an importer that
// type-checks package directories recursively, everything else through
// the compiler's source importer. Test files are analyzed too — both
// in-package _test.go files and external _test packages.
package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// cellsTypeName is the fully-qualified defined type the rule protects.
const cellsTypeName = "synergy/internal/hbase.Cells"

// ownerMarker in a function's doc comment exempts its body.
const ownerMarker = "cellsvet:owner"

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := run(".", args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cellsvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cellsvet: %d violation(s) of the Cells immutability rule\n", len(findings))
		os.Exit(1)
	}
}

// run analyzes the packages matched by patterns (directories, or dir/...
// for a recursive walk) relative to dir, returning one "file:line: msg"
// string per violation, sorted by position.
func run(dir string, patterns []string) ([]string, error) {
	root, module, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	c := newChecker(root, module)
	var findings []string
	for _, d := range dirs {
		d, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		fs, err := c.checkDir(d)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	return findings, nil
}

// moduleRoot walks upward from dir to the enclosing go.mod and returns the
// root directory and module path.
func moduleRoot(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod above %s", abs)
		}
	}
}

// expandPatterns resolves the argument patterns to package directories.
// "testdata" subtrees and dot-directories are skipped, matching the go
// tool's convention — which is what lets this tool's own seeded-violation
// fixtures live under testdata without failing the repo-wide run.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		pat = filepath.Join(base, pat)
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// checker type-checks repo packages on demand and scans their syntax for
// rule violations.
type checker struct {
	fset   *token.FileSet
	root   string // module root directory
	module string // module path
	std    types.Importer
	pure   map[string]*types.Package // import path -> non-test package
}

func newChecker(root, module string) *checker {
	fset := token.NewFileSet()
	return &checker{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pure:   map[string]*types.Package{},
	}
}

// Import resolves repo-internal paths by type-checking the package
// directory (memoized, test files excluded) and delegates everything else
// to the source importer. It makes the checker a types.Importer, which is
// what lets repo packages import each other during analysis.
func (c *checker) Import(path string) (*types.Package, error) {
	if path != c.module && !strings.HasPrefix(path, c.module+"/") {
		return c.std.Import(path)
	}
	if pkg, ok := c.pure[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(c.root, strings.TrimPrefix(strings.TrimPrefix(path, c.module), "/"))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := c.parse(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: c}
	pkg, err := conf.Check(path, c.fset, files, nil)
	if err != nil {
		return nil, err
	}
	c.pure[path] = pkg
	return pkg, nil
}

func (c *checker) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkDir analyzes one package directory: the package proper with its
// in-package test files as one unit, and the external _test package (if
// any) as another.
func (c *checker) checkDir(dir string) ([]string, error) {
	rel, err := filepath.Rel(c.root, dir)
	if err != nil {
		return nil, err
	}
	path := c.module
	if rel != "." {
		path = c.module + "/" + filepath.ToSlash(rel)
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	var findings []string
	units := []struct {
		id    string
		names []string
	}{
		{path, append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)},
		{path + "_test", bp.XTestGoFiles},
	}
	for _, u := range units {
		if len(u.names) == 0 {
			continue
		}
		files, err := c.parse(dir, u.names)
		if err != nil {
			return nil, err
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{Importer: c}
		if _, err := conf.Check(u.id, c.fset, files, info); err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", u.id, err)
		}
		for _, f := range files {
			findings = append(findings, c.scanFile(f, info)...)
		}
	}
	return findings, nil
}

// scanFile reports rule violations in one file. Only function bodies are
// scanned (package-level initializers cannot reach a live Cells window);
// a function whose doc comment carries the owner marker is exempt in full.
func (c *checker) scanFile(f *ast.File, info *types.Info) []string {
	var findings []string
	report := func(pos token.Pos, msg string) {
		findings = append(findings, fmt.Sprintf("%s: %s", c.fset.Position(pos), msg))
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || isOwner(fn.Doc) {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin && c.isCells(info, n.Args[0]) {
						report(n.Pos(), "append to hbase.Cells: returned Cells are immutable windows; Clone first")
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if base, ok := c.cellsIndexBase(info, lhs); ok {
						report(base.Pos(), "write through hbase.Cells element: returned Cells are immutable; Clone first")
					}
				}
			case *ast.IncDecStmt:
				if base, ok := c.cellsIndexBase(info, n.X); ok {
					report(base.Pos(), "write through hbase.Cells element: returned Cells are immutable; Clone first")
				}
			case *ast.SliceExpr:
				if n.Slice3 && c.isCells(info, n.X) {
					report(n.Pos(), "full slice expression on hbase.Cells: capacity surgery is reserved for annotated owners")
				}
			}
			return true
		})
	}
	return findings
}

// cellsIndexBase unwraps an assignment target and reports whether the
// write lands through an index into a Cells value — cells[i] itself, a
// field of cells[i], or anything reached from one (cells[i].Value[0]).
func (c *checker) cellsIndexBase(info *types.Info, e ast.Expr) (ast.Expr, bool) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			if c.isCells(info, t.X) {
				return t, true
			}
			e = t.X
		default:
			return nil, false
		}
	}
}

func (c *checker) isCells(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.String() == cellsTypeName
}

func isOwner(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range doc.List {
		if strings.Contains(line.Text, ownerMarker) {
			return true
		}
	}
	return false
}
