package main

import (
	"strings"
	"testing"
)

// The checker must fail on the seeded violations — one finding per
// flagged operation, none for the owner-annotated function.
func TestSeededViolationsAreCaught(t *testing.T) {
	findings, err := run(".", []string{"testdata/violation"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"append to hbase.Cells",
		"write through hbase.Cells element",
		"write through hbase.Cells element",
		"full slice expression on hbase.Cells",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(findings, "\n"))
	}
	for _, f := range findings {
		if strings.Contains(f, "ownedMutation") {
			t.Errorf("owner-annotated function flagged: %s", f)
		}
	}
	matched := 0
	for _, w := range want {
		for _, f := range findings {
			if strings.Contains(f, w) {
				matched++
				break
			}
		}
	}
	if matched != len(want) {
		t.Fatalf("missing expected findings in:\n%s", strings.Join(findings, "\n"))
	}
}

// The package that defines the rule's legitimate owners must come out
// clean — the annotations at the declaration sites cover every mutation
// cellsvet would otherwise flag.
func TestHBasePackageIsClean(t *testing.T) {
	findings, err := run(".", []string{"../../internal/hbase"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/hbase not clean:\n%s", strings.Join(findings, "\n"))
	}
}
