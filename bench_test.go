// Package repro_test holds the testing.B benchmark harness: one benchmark
// per figure and table of the paper's evaluation (§IX). Each benchmark
// executes the experiment's real work and reports the simulated response
// time the corresponding figure plots as the custom metric "sim-ms/op"
// (wall-clock ns/op measures the simulator, not the modeled system).
//
// The full-size sweeps live in cmd/synergy-bench; benchmarks here run at a
// laptop scale that preserves the shapes.
package repro_test

import (
	"sync"
	"testing"

	"synergy/internal/bench"
	"synergy/internal/schema"
	"synergy/internal/sim"
	"synergy/internal/sqlparser"
	"synergy/internal/synergy"
	"synergy/internal/tpcw"
)

// ---------------------------------------------------------------------------
// Shared fixtures

var (
	setOnce sync.Once
	set     *bench.SystemSet
	setErr  error

	microOnce sync.Once
	microSys  *synergy.System
	microErr  error
)

func systems(b *testing.B) *bench.SystemSet {
	b.Helper()
	setOnce.Do(func() {
		set, setErr = bench.BuildSystems(100, 42, nil)
	})
	if setErr != nil {
		b.Fatal(setErr)
	}
	return set
}

func micro(b *testing.B) *synergy.System {
	b.Helper()
	microOnce.Do(func() {
		microSys, microErr = synergy.New(tpcw.MicroSchema(), tpcw.MicroRoots(), tpcw.MicroWorkloadSQL(), synergy.Config{})
		if microErr != nil {
			return
		}
		for table, rows := range tpcw.MicroGenerate(300, 1) {
			if microErr = microSys.LoadBase(table, rows); microErr != nil {
				return
			}
		}
		microErr = microSys.BuildViews()
	})
	if microErr != nil {
		b.Fatal(microErr)
	}
	return microSys
}

// reportSim attaches the simulated latency metric.
func reportSim(b *testing.B, total sim.Micros) {
	b.ReportMetric(total.Milliseconds()/float64(b.N), "sim-ms/op")
}

// ---------------------------------------------------------------------------
// Figure 10 — micro-benchmark: view scan vs join algorithm

func benchmarkMicro(b *testing.B, queryIdx int, useView bool) {
	sys := micro(b)
	sel := sys.Design.Workload.Selects()[queryIdx]
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sim.NewCtx()
		var err error
		if useView {
			_, err = sys.Query(ctx, sel, nil)
		} else {
			_, err = sys.Engine.Query(ctx, sel, nil)
		}
		if err != nil {
			b.Fatal(err)
		}
		total += ctx.Elapsed()
	}
	reportSim(b, total)
}

func BenchmarkFigure10_Q1_ViewScan(b *testing.B)      { benchmarkMicro(b, 0, true) }
func BenchmarkFigure10_Q1_JoinAlgorithm(b *testing.B) { benchmarkMicro(b, 0, false) }
func BenchmarkFigure10_Q2_ViewScan(b *testing.B)      { benchmarkMicro(b, 1, true) }
func BenchmarkFigure10_Q2_JoinAlgorithm(b *testing.B) { benchmarkMicro(b, 1, false) }

// ---------------------------------------------------------------------------
// Figure 11 — lock acquire/release overhead

func benchmarkLocks(b *testing.B, n int) {
	rows, err := bench.RunFigure11([]int{n}, 1, 7, nil)
	if err != nil {
		b.Fatal(err)
	}
	_ = rows
	b.ResetTimer()
	var total sim.Micros
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure11([]int{n}, 1, int64(i), nil)
		if err != nil {
			b.Fatal(err)
		}
		total += sim.FromMillis(r[0].Overhead.Mean)
	}
	reportSim(b, total)
}

func BenchmarkFigure11_Locks10(b *testing.B)   { benchmarkLocks(b, 10) }
func BenchmarkFigure11_Locks100(b *testing.B)  { benchmarkLocks(b, 100) }
func BenchmarkFigure11_Locks1000(b *testing.B) { benchmarkLocks(b, 1000) }

// ---------------------------------------------------------------------------
// Figure 12 — TPC-W join queries per system

func benchmarkJoins(b *testing.B, pick func(*bench.SystemSet) bench.EvalSystem) {
	s := systems(b)
	sys := pick(s)
	stmts := tpcw.JoinQueries()
	rng := sim.NewRNG(3)
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range stmts {
			if !sys.Supported(st) {
				continue
			}
			ctx := sim.NewCtx()
			if err := sys.Run(ctx, st, st.Params(s.Data, rng)); err != nil {
				b.Fatal(err)
			}
			total += ctx.Elapsed()
		}
	}
	reportSim(b, total)
}

func BenchmarkFigure12_Joins_Synergy(b *testing.B) {
	benchmarkJoins(b, func(s *bench.SystemSet) bench.EvalSystem { return s.Synergy })
}
func BenchmarkFigure12_Joins_MVCCA(b *testing.B) {
	benchmarkJoins(b, func(s *bench.SystemSet) bench.EvalSystem { return s.MVCCA })
}
func BenchmarkFigure12_Joins_MVCCUA(b *testing.B) {
	benchmarkJoins(b, func(s *bench.SystemSet) bench.EvalSystem { return s.MVCCUA })
}
func BenchmarkFigure12_Joins_Baseline(b *testing.B) {
	benchmarkJoins(b, func(s *bench.SystemSet) bench.EvalSystem { return s.Baseline })
}
func BenchmarkFigure12_Joins_VoltDB(b *testing.B) {
	benchmarkJoins(b, func(s *bench.SystemSet) bench.EvalSystem { return s.VoltDB })
}

// ---------------------------------------------------------------------------
// Figure 14 — TPC-W write statements per system

func benchmarkWrites(b *testing.B, pick func(*bench.SystemSet) bench.EvalSystem) {
	s := systems(b)
	sys := pick(s)
	stmts := tpcw.WriteStatements()
	rng := sim.NewRNG(5)
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range stmts {
			ctx := sim.NewCtx()
			if err := sys.Run(ctx, st, st.Params(s.Data, rng)); err != nil {
				b.Fatal(err)
			}
			total += ctx.Elapsed()
		}
	}
	reportSim(b, total)
}

func BenchmarkFigure14_Writes_Synergy(b *testing.B) {
	benchmarkWrites(b, func(s *bench.SystemSet) bench.EvalSystem { return s.Synergy })
}
func BenchmarkFigure14_Writes_MVCCA(b *testing.B) {
	benchmarkWrites(b, func(s *bench.SystemSet) bench.EvalSystem { return s.MVCCA })
}
func BenchmarkFigure14_Writes_MVCCUA(b *testing.B) {
	benchmarkWrites(b, func(s *bench.SystemSet) bench.EvalSystem { return s.MVCCUA })
}
func BenchmarkFigure14_Writes_Baseline(b *testing.B) {
	benchmarkWrites(b, func(s *bench.SystemSet) bench.EvalSystem { return s.Baseline })
}
func BenchmarkFigure14_Writes_VoltDB(b *testing.B) {
	benchmarkWrites(b, func(s *bench.SystemSet) bench.EvalSystem { return s.VoltDB })
}

// ---------------------------------------------------------------------------
// Table II — full-workload response time per system

func benchmarkFullWorkload(b *testing.B, pick func(*bench.SystemSet) bench.EvalSystem) {
	s := systems(b)
	sys := pick(s)
	stmts := tpcw.AllStatements()
	rng := sim.NewRNG(9)
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range stmts {
			if !sys.Supported(st) {
				continue
			}
			ctx := sim.NewCtx()
			if err := sys.Run(ctx, st, st.Params(s.Data, rng)); err != nil {
				b.Fatal(err)
			}
			total += ctx.Elapsed()
		}
	}
	reportSim(b, total)
}

func BenchmarkTableII_Synergy(b *testing.B) {
	benchmarkFullWorkload(b, func(s *bench.SystemSet) bench.EvalSystem { return s.Synergy })
}
func BenchmarkTableII_MVCCA(b *testing.B) {
	benchmarkFullWorkload(b, func(s *bench.SystemSet) bench.EvalSystem { return s.MVCCA })
}
func BenchmarkTableII_MVCCUA(b *testing.B) {
	benchmarkFullWorkload(b, func(s *bench.SystemSet) bench.EvalSystem { return s.MVCCUA })
}
func BenchmarkTableII_Baseline(b *testing.B) {
	benchmarkFullWorkload(b, func(s *bench.SystemSet) bench.EvalSystem { return s.Baseline })
}

// ---------------------------------------------------------------------------
// Table III — storage accounting

func BenchmarkTableIII_Storage(b *testing.B) {
	s := systems(b)
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytes = 0
		for _, sys := range s.All() {
			bytes += sys.DatabaseBytes()
		}
	}
	b.ReportMetric(float64(bytes)/1e6, "total-MB")
}

// ---------------------------------------------------------------------------
// Ablations — design-choice benchmarks DESIGN.md calls out

// Hierarchical locking vs MVCC on the same views (the Synergy vs MVCC-A
// delta isolated to concurrency control).
func BenchmarkAblation_WriteW13_HierarchicalLock(b *testing.B) {
	s := systems(b)
	st, _ := tpcw.StatementByID("W13")
	rng := sim.NewRNG(11)
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sim.NewCtx()
		if err := s.Synergy.Run(ctx, st, st.Params(s.Data, rng)); err != nil {
			b.Fatal(err)
		}
		total += ctx.Elapsed()
	}
	reportSim(b, total)
}

func BenchmarkAblation_WriteW13_MVCC(b *testing.B) {
	s := systems(b)
	st, _ := tpcw.StatementByID("W13")
	rng := sim.NewRNG(11)
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sim.NewCtx()
		if err := s.MVCCA.Run(ctx, st, st.Params(s.Data, rng)); err != nil {
			b.Fatal(err)
		}
		total += ctx.Elapsed()
	}
	reportSim(b, total)
}

// View-index ablation: Q4 (filter on i_subject) through the view with its
// §VI-C index vs the bare view scan path on base tables.
func BenchmarkAblation_Q4_WithViewIndex(b *testing.B) {
	s := systems(b)
	st, _ := tpcw.StatementByID("Q4")
	rng := sim.NewRNG(13)
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sim.NewCtx()
		if err := s.Synergy.Run(ctx, st, st.Params(s.Data, rng)); err != nil {
			b.Fatal(err)
		}
		total += ctx.Elapsed()
	}
	reportSim(b, total)
}

func BenchmarkAblation_Q4_BaseJoin(b *testing.B) {
	s := systems(b)
	st, _ := tpcw.StatementByID("Q4")
	sel := sqlparser.MustParse(st.SQL).(*sqlparser.SelectStmt)
	rng := sim.NewRNG(13)
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sim.NewCtx()
		params := st.Params(s.Data, rng)
		if _, err := s.Synergy.System().Engine.Query(ctx, sel, params); err != nil {
			b.Fatal(err)
		}
		total += ctx.Elapsed()
	}
	reportSim(b, total)
}

// Single-lock vs per-row locking: the motivating overhead comparison of
// §III-2 — one hierarchical lock versus acquiring a row lock per affected
// view row.
func BenchmarkAblation_SingleLockPerTxn(b *testing.B) {
	s := systems(b)
	lm := s.Synergy.System().Locks
	key := schema.EncodeKey(int64(1))
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sim.NewCtx()
		if err := lm.Acquire(ctx, "Customer", key); err != nil {
			b.Fatal(err)
		}
		if err := lm.Release(ctx, "Customer", key); err != nil {
			b.Fatal(err)
		}
		total += ctx.Elapsed()
	}
	reportSim(b, total)
}

func BenchmarkAblation_HundredRowLocks(b *testing.B) {
	s := systems(b)
	lm := s.Synergy.System().Locks
	var total sim.Micros
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := sim.NewCtx()
		for k := int64(1); k <= 100; k++ {
			if err := lm.Acquire(ctx, "Customer", schema.EncodeKey(k)); err != nil {
				b.Fatal(err)
			}
		}
		for k := int64(1); k <= 100; k++ {
			if err := lm.Release(ctx, "Customer", schema.EncodeKey(k)); err != nil {
				b.Fatal(err)
			}
		}
		total += ctx.Elapsed()
	}
	reportSim(b, total)
}
